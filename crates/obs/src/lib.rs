//! Deterministic, allocation-free observability primitives.
//!
//! The fleet engine simulates 10⁵+ adaptive controllers; when something goes
//! wrong mid-study (a controller deadlocks after a regime revert, a scheduler
//! thrashes between full re-sorts), the only tool used to be re-running with
//! printlns. This crate is the metrics plane: the primitive types every layer
//! records into, designed around three constraints the engine already
//! guarantees elsewhere and must not lose here:
//!
//! * **Determinism.** No wall clocks, no atomics racing in time order, no
//!   hash-map iteration. Everything is a plain value updated by whoever owns
//!   it; concurrent collection happens in per-worker shards that the engine
//!   merges *in shard order*, so a metrics snapshot is byte-identical for any
//!   `--threads N`.
//! * **Zero steady-state allocations.** Histograms pre-size their buckets,
//!   the journal is a fixed ring, counters are bare integers. A settled epoch
//!   with metrics enabled still pins at 0 heap allocations
//!   (`crates/analysis/tests/metrics_steady_state.rs`).
//! * **Zero dependencies.** The crate sits below `dsp` in the workspace
//!   graph, so anything — the FFT planner included — can count into it.
//!
//! Four primitives:
//!
//! * [`Counter`] — a monotonic `u64` count.
//! * [`Gauge`] — a last-write-wins `f64` level.
//! * [`Histogram`] — fixed log-spaced buckets plus count/sum/min/max;
//!   quantiles are interpolated from the bucket the rank lands in, the
//!   constant-space streaming idiom of Chambers et al., *Monitoring
//!   Networked Applications With Incremental Quantile Estimation*.
//! * [`Journal`] — a bounded flight-recorder ring of [`JournalEvent`]s;
//!   when full the oldest event is overwritten and a drop counter keeps the
//!   loss visible.
//!
//! [`json`] holds the escape/format helpers snapshot writers use to emit
//! JSON into a *reused* `String` (no per-line allocation).

pub mod json;

/// A monotonic event count. Merging (shard aggregation) is addition.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// A zeroed counter.
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Count one event.
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Count `n` events at once.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// The current count.
    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }

    /// Folds another shard's count into this one.
    #[inline]
    pub fn merge(&mut self, other: Counter) {
        self.0 += other.0;
    }
}

/// A last-write-wins level (bytes resident, seconds elapsed, budget spent).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Gauge(f64);

impl Gauge {
    /// A zeroed gauge.
    pub const fn new() -> Self {
        Gauge(0.0)
    }

    /// Replace the level.
    #[inline]
    pub fn set(&mut self, value: f64) {
        self.0 = value;
    }

    /// Accumulate into the level (per-shard bytes summed across shards).
    #[inline]
    pub fn add(&mut self, value: f64) {
        self.0 += value;
    }

    /// The current level.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }
}

/// Fixed log-spaced buckets with count/sum/min/max and interpolated
/// quantiles — constant space per Chambers et al., deterministic because
/// bucket indices are pure functions of the recorded value.
///
/// Bucket 0 catches everything below `lo` (including zero and negatives);
/// the last bucket catches everything at or above `hi`. In between, bucket
/// edges grow geometrically, so relative quantile error is bounded by the
/// per-bucket growth ratio regardless of how many values stream through.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    /// `1 / ln(ratio)` where `ratio` is the per-bucket growth factor.
    inv_log_ratio: f64,
    log_ratio: f64,
    buckets: Box<[u64]>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// A histogram spanning `[lo, hi)` with `buckets` geometric buckets
    /// (plus the two catch-all end buckets). `lo` and `hi` must be positive
    /// with `lo < hi`; `buckets >= 1`.
    pub fn log_scale(lo: f64, hi: f64, buckets: usize) -> Self {
        assert!(lo > 0.0 && hi > lo, "log_scale needs 0 < lo < hi");
        assert!(buckets >= 1, "log_scale needs at least one bucket");
        let log_ratio = (hi / lo).ln() / buckets as f64;
        Histogram {
            lo,
            inv_log_ratio: 1.0 / log_ratio,
            log_ratio,
            buckets: vec![0u64; buckets + 2].into_boxed_slice(),
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Bucket index for `value`: 0 for the underflow bucket, `n + 1` for the
    /// overflow bucket.
    #[inline]
    fn bucket_index(&self, value: f64) -> usize {
        // NaN and everything below `lo` (negatives included) land in the
        // underflow bucket.
        if value.partial_cmp(&self.lo).is_none_or(|o| o.is_lt()) {
            return 0;
        }
        let i = ((value / self.lo).ln() * self.inv_log_ratio) as usize + 1;
        i.min(self.buckets.len() - 1)
    }

    /// Record one observation.
    #[inline]
    pub fn record(&mut self, value: f64) {
        let i = self.bucket_index(value);
        self.buckets[i] += 1;
        self.count += 1;
        self.sum += value;
        if value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
    }

    /// Observations recorded since the last [`reset`](Self::reset).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (additions in record order — feed it serially
    /// in a canonical order when byte-stable output matters).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest recorded value (`0.0` when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest recorded value (`0.0` when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Mean of recorded values (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`), interpolated within the bucket the
    /// rank lands in and clamped to the observed `[min, max]`. `0.0` when
    /// empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank in [1, count]: the k-th smallest observation we answer for.
        let rank = (q * (self.count - 1) as f64).floor() as u64 + 1;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                // Interpolate the rank's position inside this bucket.
                let frac = (rank - seen) as f64 / n as f64;
                let (lo, hi) = self.bucket_bounds(i);
                let est = if i == 0 || i + 1 == self.buckets.len() {
                    // Catch-all buckets have one open end; answer with the
                    // observed extreme rather than an invented edge.
                    if i == 0 {
                        self.min + (lo.min(self.max) - self.min) * frac
                    } else {
                        lo + (self.max - lo) * frac
                    }
                } else {
                    // Geometric interpolation matches the bucket spacing.
                    lo * (hi / lo).powf(frac)
                };
                return est.clamp(self.min, self.max);
            }
            seen += n;
        }
        self.max
    }

    /// `[lower, upper)` value bounds of bucket `i` (catch-alls share the
    /// nearest real edge).
    fn bucket_bounds(&self, i: usize) -> (f64, f64) {
        let inner = self.buckets.len() - 2;
        if i == 0 {
            return (self.lo, self.lo);
        }
        if i == inner + 1 {
            let hi = self.lo * ((inner as f64) * self.log_ratio).exp();
            return (hi, hi);
        }
        let lo = self.lo * (((i - 1) as f64) * self.log_ratio).exp();
        let hi = self.lo * ((i as f64) * self.log_ratio).exp();
        (lo, hi)
    }

    /// Folds another histogram into this one. Both must come from the same
    /// `log_scale` call shape.
    ///
    /// # Panics
    /// Panics when the bucket layouts differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.buckets.len(),
            other.buckets.len(),
            "histogram merge: bucket layouts differ"
        );
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Forget every observation but keep the bucket storage.
    pub fn reset(&mut self) {
        self.buckets.fill(0);
        self.count = 0;
        self.sum = 0.0;
        self.min = f64::INFINITY;
        self.max = f64::NEG_INFINITY;
    }
}

/// One flight-recorder entry: something notable happened to `device` at
/// `epoch`. `kind` is a static tag (no allocation, no lifetime bookkeeping);
/// `value` carries the event's magnitude where one exists (a granted rate, a
/// rebuilt byte count) and `0.0` otherwise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JournalEvent {
    pub epoch: u32,
    pub device: u32,
    pub kind: &'static str,
    pub value: f64,
}

/// A bounded flight-recorder ring. Records are kept newest-last; once the
/// ring is full each push overwrites the oldest record and bumps
/// [`dropped`](Self::dropped) so the loss stays visible. All storage is
/// allocated up front — pushing never touches the heap.
#[derive(Debug, Clone)]
pub struct Journal {
    ring: Vec<JournalEvent>,
    capacity: usize,
    /// Index of the oldest live record.
    head: usize,
    len: usize,
    dropped: u64,
    total: u64,
}

impl Journal {
    /// A ring holding at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "journal needs a nonzero capacity");
        Journal {
            ring: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            len: 0,
            dropped: 0,
            total: 0,
        }
    }

    /// Record an event, overwriting the oldest one when full.
    pub fn record(&mut self, event: JournalEvent) {
        self.total += 1;
        if self.len < self.capacity {
            // Still filling the preallocated ring: push never reallocates
            // because `ring` was reserved to `capacity` up front.
            self.ring.push(event);
            self.len += 1;
        } else {
            self.ring[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Live records, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &JournalEvent> + '_ {
        let (tail, head) = self.ring.split_at(self.head.min(self.ring.len()));
        head.iter().chain(tail.iter())
    }

    /// The `i`-th oldest live record, by value (`None` past
    /// [`len`](Self::len)). Lets a caller drain the ring while holding a
    /// mutable borrow elsewhere on itself between lookups.
    pub fn get(&self, i: usize) -> Option<JournalEvent> {
        if i >= self.len {
            return None;
        }
        Some(self.ring[(self.head + i) % self.ring.len()])
    }

    /// Number of live records.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when nothing is recorded.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Events overwritten since the last [`clear`](Self::clear).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Events ever recorded (kept + dropped) since the last clear.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Forget every record but keep the ring storage.
    pub fn clear(&mut self) {
        self.ring.clear();
        self.head = 0;
        self.len = 0;
        self.dropped = 0;
        self.total = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts_and_merges() {
        let mut a = Counter::new();
        a.inc();
        a.add(4);
        let mut b = Counter::new();
        b.add(10);
        b.merge(a);
        assert_eq!(a.get(), 5);
        assert_eq!(b.get(), 15);
    }

    #[test]
    fn gauge_is_last_write_wins() {
        let mut g = Gauge::new();
        g.set(3.5);
        g.set(2.0);
        g.add(0.5);
        assert_eq!(g.get(), 2.5);
    }

    #[test]
    fn histogram_tracks_count_sum_min_max() {
        let mut h = Histogram::log_scale(0.001, 10.0, 32);
        for v in [0.5, 2.0, 0.25, 4.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 6.75).abs() < 1e-12);
        assert_eq!(h.min(), 0.25);
        assert_eq!(h.max(), 4.0);
        assert!((h.mean() - 1.6875).abs() < 1e-12);
    }

    #[test]
    fn histogram_quantiles_are_monotone_and_bounded() {
        let mut h = Histogram::log_scale(0.001, 100.0, 64);
        let mut x = 0.0017f64;
        for _ in 0..500 {
            h.record(x);
            x *= 1.019;
        }
        let mut last = f64::NEG_INFINITY;
        for i in 0..=20 {
            let q = h.quantile(i as f64 / 20.0);
            assert!(q >= last, "quantiles must be monotone");
            assert!(q >= h.min() && q <= h.max());
            last = q;
        }
        // Geometric stream: the median should land within one bucket's
        // relative width of the true middle sample.
        let true_median = 0.0017 * 1.019f64.powi(250);
        let got = h.quantile(0.5);
        assert!(
            (got / true_median).ln().abs() < (100.0f64 / 0.001).ln() / 64.0 * 1.5,
            "median {got} vs true {true_median}"
        );
    }

    #[test]
    fn histogram_catches_under_and_overflow() {
        let mut h = Histogram::log_scale(1.0, 10.0, 4);
        h.record(0.0);
        h.record(-5.0);
        h.record(1e9);
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), -5.0);
        assert_eq!(h.max(), 1e9);
        assert!(h.quantile(0.0) >= -5.0);
        assert!(h.quantile(1.0) <= 1e9);
    }

    #[test]
    fn histogram_merge_matches_single_stream() {
        let mut whole = Histogram::log_scale(0.01, 10.0, 16);
        let mut left = Histogram::log_scale(0.01, 10.0, 16);
        let mut right = Histogram::log_scale(0.01, 10.0, 16);
        for i in 0..200 {
            let v = 0.013 * (1 + i % 97) as f64;
            whole.record(v);
            if i < 100 {
                left.record(v);
            } else {
                right.record(v);
            }
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(left.quantile(q), whole.quantile(q));
        }
    }

    #[test]
    fn histogram_reset_keeps_layout() {
        let mut h = Histogram::log_scale(0.01, 10.0, 16);
        h.record(1.0);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.quantile(0.5), 0.0);
        h.record(2.0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile(0.5), 2.0);
    }

    #[test]
    fn journal_keeps_newest_and_counts_drops() {
        let mut j = Journal::with_capacity(3);
        for i in 0..5u32 {
            j.record(JournalEvent {
                epoch: i,
                device: i,
                kind: "test",
                value: i as f64,
            });
        }
        assert_eq!(j.len(), 3);
        assert_eq!(j.dropped(), 2);
        assert_eq!(j.total(), 5);
        let epochs: Vec<u32> = j.iter().map(|e| e.epoch).collect();
        assert_eq!(epochs, vec![2, 3, 4], "oldest first, newest kept");
        j.clear();
        assert!(j.is_empty());
        assert_eq!(j.dropped(), 0);
    }

    #[test]
    fn journal_get_matches_iter_order() {
        let mut j = Journal::with_capacity(3);
        for i in 0..5u32 {
            j.record(JournalEvent {
                epoch: i,
                device: i,
                kind: "test",
                value: i as f64,
            });
        }
        let via_iter: Vec<JournalEvent> = j.iter().copied().collect();
        let via_get: Vec<JournalEvent> = (0..j.len()).map(|i| j.get(i).unwrap()).collect();
        assert_eq!(via_get, via_iter);
        assert_eq!(j.get(3), None, "index past len");
        // Partially-filled ring: head is still zero.
        let mut p = Journal::with_capacity(4);
        p.record(JournalEvent { epoch: 9, device: 1, kind: "t", value: 0.0 });
        assert_eq!(p.get(0).unwrap().epoch, 9);
        assert_eq!(p.get(1), None);
    }

    #[test]
    fn journal_push_does_not_reallocate() {
        let mut j = Journal::with_capacity(8);
        let before = j.ring.capacity();
        for i in 0..100u32 {
            j.record(JournalEvent {
                epoch: i,
                device: 0,
                kind: "x",
                value: 0.0,
            });
        }
        assert_eq!(j.ring.capacity(), before);
    }
}
