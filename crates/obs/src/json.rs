//! Allocation-conscious JSON fragment helpers for snapshot writers.
//!
//! Snapshot lines are emitted once per epoch from a loop that must stay at
//! zero steady-state heap allocations, so everything here *appends into a
//! caller-owned `String`* — the buffer grows once to its high-water mark and
//! is reused for every subsequent line. (`std`'s float formatting writes
//! through stack buffers, so `write!` into a pre-grown `String` does not
//! allocate.)

use std::fmt::Write;

/// Appends `s` as a JSON string literal (quotes included).
pub fn string_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `v` as a JSON number: Rust's `{}` float formatting is the
/// shortest digit string that round-trips, which is valid JSON for every
/// finite value. Non-finite values (JSON has no spelling for them) become
/// `null`.
pub fn number_into(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Appends an unsigned integer field value.
pub fn uint_into(out: &mut String, v: u64) {
    let _ = write!(out, "{v}");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(f: impl FnOnce(&mut String)) -> String {
        let mut out = String::new();
        f(&mut out);
        out
    }

    #[test]
    fn strings_escape_controls_and_quotes() {
        assert_eq!(s(|o| string_into(o, "plain")), "\"plain\"");
        assert_eq!(s(|o| string_into(o, "a\"b\\c\n")), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(s(|o| string_into(o, "\u{1}")), "\"\\u0001\"");
    }

    #[test]
    fn numbers_round_trip_and_null_out_nonfinite() {
        assert_eq!(s(|o| number_into(o, 0.25)), "0.25");
        assert_eq!(s(|o| number_into(o, -3.0)), "-3");
        assert_eq!(s(|o| number_into(o, f64::NAN)), "null");
        assert_eq!(s(|o| number_into(o, f64::INFINITY)), "null");
        assert_eq!(s(|o| uint_into(o, 42)), "42");
    }

    #[test]
    fn appending_into_pregrown_buffer_keeps_capacity() {
        let mut out = String::with_capacity(256);
        let cap = out.capacity();
        for _ in 0..10 {
            out.clear();
            string_into(&mut out, "kind");
            out.push(':');
            number_into(&mut out, 1.2345678);
        }
        assert_eq!(out.capacity(), cap);
    }
}
