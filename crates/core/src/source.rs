//! The signal-source abstraction the adaptive sampler drives.
//!
//! The §4.2 controller must *acquire* measurements, not just analyze recorded
//! ones — acquiring is the expensive part the paper wants to minimize. A
//! [`SignalSource`] is anything that can be polled over a time window at a
//! chosen rate: the synthetic telemetry generator, the monitoring simulator's
//! devices, or (in a real deployment) an SNMP/gNMI poller.

use sweetspot_timeseries::{Hertz, RegularSeries, Seconds};

/// Something that can be sampled at an arbitrary rate over a window.
pub trait SignalSource {
    /// Samples the signal on `[start, start + duration)` at `rate`.
    ///
    /// Implementations must return a [`RegularSeries`] whose `start` is
    /// `start` and whose interval is `1/rate`. The number of samples is
    /// `round(duration · rate)`, at least 1.
    fn sample(&mut self, start: Seconds, rate: Hertz, duration: Seconds) -> RegularSeries;

    /// [`SignalSource::sample`] with a recycled value buffer: the caller
    /// hands back storage from a previous series (via
    /// [`RegularSeries::into_values`]) and the source *may* build the result
    /// in it, making the steady-state sampling loop allocation-free.
    ///
    /// Must return exactly what [`SignalSource::sample`] would. The default
    /// implementation discards the buffer and delegates, so sources only
    /// opt in when they have a zero-allocation path (e.g.
    /// `monitor::ScratchSource`).
    fn sample_recycled(
        &mut self,
        start: Seconds,
        rate: Hertz,
        duration: Seconds,
        recycled: Vec<f64>,
    ) -> RegularSeries {
        drop(recycled);
        self.sample(start, rate, duration)
    }
}

/// Adapter implementing [`SignalSource`] from a closure — handy in tests and
/// for wrapping foreign generators without a newtype per call-site.
pub struct FnSource<F>(pub F)
where
    F: FnMut(Seconds, Hertz, Seconds) -> RegularSeries;

impl<F> SignalSource for FnSource<F>
where
    F: FnMut(Seconds, Hertz, Seconds) -> RegularSeries,
{
    fn sample(&mut self, start: Seconds, rate: Hertz, duration: Seconds) -> RegularSeries {
        (self.0)(start, rate, duration)
    }
}

/// A [`SignalSource`] that evaluates a pure function of time — the cheapest
/// way to expose an analytic signal (or a `telemetry::SignalModel` closure)
/// to the controller.
pub struct FunctionSource<F>
where
    F: FnMut(f64) -> f64,
{
    f: F,
}

impl<F> FunctionSource<F>
where
    F: FnMut(f64) -> f64,
{
    /// Wraps `f(t_seconds) -> value`.
    pub fn new(f: F) -> Self {
        FunctionSource { f }
    }
}

impl<F> SignalSource for FunctionSource<F>
where
    F: FnMut(f64) -> f64,
{
    fn sample(&mut self, start: Seconds, rate: Hertz, duration: Seconds) -> RegularSeries {
        assert!(rate.value() > 0.0, "rate must be positive");
        assert!(duration.value() > 0.0, "duration must be positive");
        let interval = rate.period();
        let n = (duration.value() * rate.value()).round().max(1.0) as usize;
        let values = (0..n)
            .map(|k| (self.f)(start.value() + k as f64 * interval.value()))
            .collect();
        RegularSeries::new(start, interval, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn function_source_samples_the_function() {
        let mut src = FunctionSource::new(|t| 2.0 * t);
        let s = src.sample(Seconds(10.0), Hertz(0.5), Seconds(10.0));
        assert_eq!(s.len(), 5);
        assert_eq!(s.start(), Seconds(10.0));
        assert_eq!(s.values(), &[20.0, 24.0, 28.0, 32.0, 36.0]);
    }

    #[test]
    fn fn_source_delegates() {
        let mut src = FnSource(|start: Seconds, rate: Hertz, _dur: Seconds| {
            RegularSeries::new(start, rate.period(), vec![1.0, 2.0])
        });
        let s = src.sample(Seconds(0.0), Hertz(1.0), Seconds(2.0));
        assert_eq!(s.values(), &[1.0, 2.0]);
    }

    #[test]
    fn function_source_respects_rate_grid() {
        let mut src = FunctionSource::new(|t| t);
        let s = src.sample(Seconds(0.0), Hertz(4.0), Seconds(1.0));
        assert_eq!(s.len(), 4);
        assert_eq!(s.interval(), Seconds(0.25));
        assert_eq!(s.values(), &[0.0, 0.25, 0.5, 0.75]);
    }
}
