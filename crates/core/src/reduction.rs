//! Possible-reduction-ratio bookkeeping (Figures 1 and 4).
//!
//! For each `(metric, device)` pair the study computes the ratio between the
//! rate operators sample at today and the Nyquist rate the estimator found:
//! `ratio > 1` means over-sampling (the pair can be slowed down by that
//! factor), `ratio < 1` or an aliased verdict means under-sampling.

use crate::estimator::NyquistEstimate;
use serde::{Deserialize, Serialize};
use sweetspot_timeseries::Hertz;

/// Classification of one metric-device pair (the paper's 89% / 11% split).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PairClass {
    /// Sampled above the Nyquist rate today; can be reduced by the ratio.
    Oversampled,
    /// Sampled below the Nyquist rate (or judged aliased) — needs *more*
    /// samples, not fewer.
    Undersampled,
}

/// Outcome for one pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReductionOutcome {
    /// Today's sampling rate.
    pub actual_rate: Hertz,
    /// The estimate (None encodes the paper's −1 / aliased case).
    pub estimated_nyquist: Option<Hertz>,
    /// `actual / nyquist` when a rate was estimated.
    pub ratio: Option<f64>,
    /// Over- vs under-sampled.
    pub class: PairClass,
}

/// Computes the reduction outcome for one pair.
///
/// An estimate of `Aliased` — and any estimated rate *above* the actual
/// rate — classifies as [`PairClass::Undersampled`].
///
/// # Panics
/// Panics if `actual_rate` is not positive.
pub fn reduction_outcome(actual_rate: Hertz, estimate: NyquistEstimate) -> ReductionOutcome {
    assert!(actual_rate.value() > 0.0, "actual rate must be positive");
    match estimate {
        NyquistEstimate::Aliased => ReductionOutcome {
            actual_rate,
            estimated_nyquist: None,
            ratio: None,
            class: PairClass::Undersampled,
        },
        NyquistEstimate::Rate(nyq) => {
            // A zero estimate (floor disabled, constant signal) would make
            // the ratio infinite; report it as an unbounded reduction.
            let ratio = if nyq.value() > 0.0 {
                actual_rate.value() / nyq.value()
            } else {
                f64::INFINITY
            };
            let class = if ratio >= 1.0 {
                PairClass::Oversampled
            } else {
                PairClass::Undersampled
            };
            ReductionOutcome {
                actual_rate,
                estimated_nyquist: Some(nyq),
                ratio: Some(ratio),
                class,
            }
        }
    }
}

/// Fleet-level aggregate of reduction outcomes (§3.2's headline numbers).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReductionSummary {
    /// Number of pairs analyzed.
    pub pairs: usize,
    /// Fraction sampled above their Nyquist rate (paper: 0.89).
    pub oversampled_fraction: f64,
    /// Fraction under-sampled or aliased (paper: 0.11).
    pub undersampled_fraction: f64,
    /// Fraction of pairs reducible by ≥ 10×.
    pub reducible_10x: f64,
    /// Fraction of pairs reducible by ≥ 100×.
    pub reducible_100x: f64,
    /// Fraction of pairs reducible by ≥ 1000× (paper: ~0.20).
    pub reducible_1000x: f64,
}

/// Aggregates outcomes into the paper's headline statistics.
pub fn summarize(outcomes: &[ReductionOutcome]) -> ReductionSummary {
    let n = outcomes.len();
    if n == 0 {
        return ReductionSummary {
            pairs: 0,
            oversampled_fraction: 0.0,
            undersampled_fraction: 0.0,
            reducible_10x: 0.0,
            reducible_100x: 0.0,
            reducible_1000x: 0.0,
        };
    }
    let over = outcomes
        .iter()
        .filter(|o| o.class == PairClass::Oversampled)
        .count();
    let frac_at_least = |x: f64| {
        outcomes
            .iter()
            .filter(|o| o.ratio.is_some_and(|r| r >= x))
            .count() as f64
            / n as f64
    };
    ReductionSummary {
        pairs: n,
        oversampled_fraction: over as f64 / n as f64,
        undersampled_fraction: (n - over) as f64 / n as f64,
        reducible_10x: frac_at_least(10.0),
        reducible_100x: frac_at_least(100.0),
        reducible_1000x: frac_at_least(1000.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oversampled_pair() {
        let o = reduction_outcome(Hertz(1.0), NyquistEstimate::Rate(Hertz(0.01)));
        assert_eq!(o.class, PairClass::Oversampled);
        assert!((o.ratio.unwrap() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn undersampled_pair_via_rate() {
        let o = reduction_outcome(Hertz(0.01), NyquistEstimate::Rate(Hertz(0.05)));
        assert_eq!(o.class, PairClass::Undersampled);
        assert!((o.ratio.unwrap() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn aliased_pair_is_undersampled_with_no_ratio() {
        let o = reduction_outcome(Hertz(1.0), NyquistEstimate::Aliased);
        assert_eq!(o.class, PairClass::Undersampled);
        assert!(o.ratio.is_none());
        assert!(o.estimated_nyquist.is_none());
    }

    #[test]
    fn zero_estimate_is_unbounded_reduction() {
        let o = reduction_outcome(Hertz(1.0), NyquistEstimate::Rate(Hertz(0.0)));
        assert_eq!(o.ratio, Some(f64::INFINITY));
        assert_eq!(o.class, PairClass::Oversampled);
    }

    #[test]
    fn summary_counts() {
        let outcomes = vec![
            reduction_outcome(Hertz(1.0), NyquistEstimate::Rate(Hertz(0.0005))), // 2000×
            reduction_outcome(Hertz(1.0), NyquistEstimate::Rate(Hertz(0.005))),  // 200×
            reduction_outcome(Hertz(1.0), NyquistEstimate::Rate(Hertz(0.05))),   // 20×
            reduction_outcome(Hertz(1.0), NyquistEstimate::Rate(Hertz(0.5))),    // 2×
            reduction_outcome(Hertz(1.0), NyquistEstimate::Aliased),
        ];
        let s = summarize(&outcomes);
        assert_eq!(s.pairs, 5);
        assert!((s.oversampled_fraction - 0.8).abs() < 1e-12);
        assert!((s.undersampled_fraction - 0.2).abs() < 1e-12);
        assert!((s.reducible_10x - 0.6).abs() < 1e-12);
        assert!((s.reducible_100x - 0.4).abs() < 1e-12);
        assert!((s.reducible_1000x - 0.2).abs() < 1e-12);
    }

    #[test]
    fn empty_summary() {
        let s = summarize(&[]);
        assert_eq!(s.pairs, 0);
        assert_eq!(s.oversampled_fraction, 0.0);
    }
}
