//! Ergodicity probing (§6, "Beyond Nyquist").
//!
//! The paper: *"Samples from the system are ergodic if the statistical
//! properties of a set of samples derived from a single CPU over a
//! sufficiently long sequence of time are equivalent to those of a set of
//! samples derived from measuring the entire fleet at once. … Extrapolating
//! canary results to other devices relies on ergodicity. Does this assumption
//! hold in practice? How long of an observation period is required?"*
//!
//! This module answers those questions for a set of co-sampled traces: it
//! compares per-device time averages with instant fleet-ensemble averages and
//! computes the observation horizon after which a single device's running
//! average stays within a tolerance of the ensemble mean.

use sweetspot_dsp::stats;
use sweetspot_timeseries::{RegularSeries, Seconds};

/// Fleet-level ergodicity diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct ErgodicityReport {
    /// Mean of each device's time-average.
    pub mean_time_average: f64,
    /// Mean of the per-instant ensemble averages (equals
    /// `mean_time_average` when all traces are equally long — both average
    /// the same sample set; the interesting signal is the spreads below).
    pub mean_ensemble_average: f64,
    /// Standard deviation of per-device time averages — how much devices
    /// disagree with each other (large ⇒ heterogeneous fleet ⇒ canarying is
    /// risky).
    pub time_average_spread: f64,
    /// Standard deviation of per-instant ensemble averages — how much the
    /// fleet-wide mean moves over time.
    pub ensemble_average_spread: f64,
    /// The ergodicity score in `[0, 1]`: 1 − normalized device spread.
    /// Near 1 ⇒ any device represents the fleet; near 0 ⇒ it does not.
    pub score: f64,
}

/// Computes the ergodicity diagnostics over equally-shaped traces.
///
/// # Panics
/// Panics if `traces` is empty or lengths differ.
pub fn ergodicity_report(traces: &[RegularSeries]) -> ErgodicityReport {
    assert!(!traces.is_empty(), "need at least one trace");
    let n = traces[0].len();
    assert!(n > 0, "traces must be non-empty");
    assert!(
        traces.iter().all(|t| t.len() == n),
        "traces must be equally long"
    );

    let time_avgs: Vec<f64> = traces.iter().map(|t| stats::mean(t.values())).collect();
    let ensemble_avgs: Vec<f64> = (0..n)
        .map(|k| {
            traces.iter().map(|t| t.values()[k]).sum::<f64>() / traces.len() as f64
        })
        .collect();

    let mean_time = stats::mean(&time_avgs);
    let mean_ens = stats::mean(&ensemble_avgs);
    let spread_time = stats::stddev(&time_avgs);
    let spread_ens = stats::stddev(&ensemble_avgs);

    // Normalize the device spread by the overall variability of the data so
    // the score is scale-free.
    let all_values: Vec<f64> = traces
        .iter()
        .flat_map(|t| t.values().iter().copied())
        .collect();
    let total_std = stats::stddev(&all_values);
    let score = if total_std > 0.0 {
        (1.0 - spread_time / total_std).clamp(0.0, 1.0)
    } else {
        1.0
    };

    ErgodicityReport {
        mean_time_average: mean_time,
        mean_ensemble_average: mean_ens,
        time_average_spread: spread_time,
        ensemble_average_spread: spread_ens,
        score,
    }
}

/// The §6 "how long must we observe?" question: the earliest time after
/// which `device`'s running average stays within `tolerance` of
/// `ensemble_mean` for the remainder of the trace. `None` if it never
/// converges.
///
/// # Panics
/// Panics if the trace is empty or `tolerance` is not positive.
pub fn convergence_horizon(
    device: &RegularSeries,
    ensemble_mean: f64,
    tolerance: f64,
) -> Option<Seconds> {
    assert!(!device.is_empty(), "trace must be non-empty");
    assert!(tolerance > 0.0, "tolerance must be positive");
    let values = device.values();
    // Running averages (prefix means).
    let mut running = Vec::with_capacity(values.len());
    let mut acc = 0.0;
    for (i, &v) in values.iter().enumerate() {
        acc += v;
        running.push(acc / (i + 1) as f64);
    }
    // Earliest index from which all later running means are within tolerance.
    let mut horizon = None;
    for (i, &m) in running.iter().enumerate().rev() {
        if (m - ensemble_mean).abs() <= tolerance {
            horizon = Some(i);
        } else {
            break;
        }
    }
    horizon.map(|i| device.time_of(i))
}

/// One point of the device-subsampling curve (§6: "Is there a way to
/// leverage ergodicity to reduce the number of devices that we need to
/// sample?").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubsamplePoint {
    /// Number of devices in the subsample.
    pub devices: usize,
    /// Absolute error of the k-device grand mean (time × subset average —
    /// what canarying reports) against the full fleet's grand mean,
    /// normalized by the fleet's overall standard deviation. Averaged over
    /// all circular rotations of the device list.
    pub relative_error: f64,
}

/// How well `k` devices' *time-averaged* statistics stand in for the whole
/// fleet, for each `k` in `ks` — the canarying question made quantitative.
///
/// On an ergodic (homogeneous) fleet the error is near zero already at
/// `k = 1`: any device's time average matches the fleet. On a
/// heterogeneous fleet it decays only as more devices are averaged in.
/// Rotations are deterministic (no RNG), so results are reproducible.
///
/// # Panics
/// Panics if `traces` is empty, lengths differ, or any `k` is zero or
/// exceeds the fleet size.
pub fn subsample_curve(traces: &[RegularSeries], ks: &[usize]) -> Vec<SubsamplePoint> {
    assert!(!traces.is_empty(), "need at least one trace");
    let n_dev = traces.len();
    let n = traces[0].len();
    assert!(
        traces.iter().all(|t| t.len() == n),
        "traces must be equally long"
    );
    assert!(
        ks.iter().all(|&k| k >= 1 && k <= n_dev),
        "k must be in 1..=fleet size"
    );
    let time_avgs: Vec<f64> = traces.iter().map(|t| stats::mean(t.values())).collect();
    let grand_mean = stats::mean(&time_avgs);
    let all_values: Vec<f64> = traces
        .iter()
        .flat_map(|t| t.values().iter().copied())
        .collect();
    let scale = stats::stddev(&all_values).max(1e-12);

    ks.iter()
        .map(|&k| {
            let mut total_err = 0.0;
            for rot in 0..n_dev {
                let sub: f64 = (0..k).map(|d| time_avgs[(rot + d) % n_dev]).sum::<f64>()
                    / k as f64;
                total_err += (sub - grand_mean).abs();
            }
            SubsamplePoint {
                devices: k,
                relative_error: total_err / n_dev as f64 / scale,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;
    use sweetspot_timeseries::Seconds;

    /// Homogeneous fleet: same process, different phases.
    fn homogeneous_fleet(devices: usize, n: usize) -> Vec<RegularSeries> {
        (0..devices)
            .map(|d| {
                let phase = d as f64 * 2.0 * PI / devices as f64;
                let values: Vec<f64> = (0..n)
                    .map(|i| 50.0 + 10.0 * (2.0 * PI * 0.01 * i as f64 + phase).sin())
                    .collect();
                RegularSeries::new(Seconds::ZERO, Seconds(1.0), values)
            })
            .collect()
    }

    /// Heterogeneous fleet: every device has a different operating point.
    fn heterogeneous_fleet(devices: usize, n: usize) -> Vec<RegularSeries> {
        (0..devices)
            .map(|d| {
                let level = 20.0 + 10.0 * d as f64;
                let values: Vec<f64> = (0..n)
                    .map(|i| level + (2.0 * PI * 0.01 * i as f64).sin())
                    .collect();
                RegularSeries::new(Seconds::ZERO, Seconds(1.0), values)
            })
            .collect()
    }

    #[test]
    fn homogeneous_fleet_scores_high() {
        let r = ergodicity_report(&homogeneous_fleet(8, 2000));
        assert!(r.score > 0.95, "score {}", r.score);
        assert!(r.time_average_spread < 0.5);
    }

    #[test]
    fn heterogeneous_fleet_scores_low() {
        let r = ergodicity_report(&heterogeneous_fleet(8, 2000));
        assert!(r.score < 0.5, "score {}", r.score);
        assert!(r.time_average_spread > 10.0);
    }

    #[test]
    fn means_agree_between_views() {
        // Same sample set, both averaging orders: grand means match.
        let r = ergodicity_report(&homogeneous_fleet(5, 500));
        assert!((r.mean_time_average - r.mean_ensemble_average).abs() < 1e-9);
    }

    #[test]
    fn convergence_horizon_for_periodic_device() {
        let fleet = homogeneous_fleet(8, 2000);
        let r = ergodicity_report(&fleet);
        let h = convergence_horizon(&fleet[0], r.mean_ensemble_average, 0.5)
            .expect("periodic signal converges");
        // Must converge well before the end.
        assert!(h.value() < 1500.0, "horizon {h}");
    }

    #[test]
    fn tighter_tolerance_needs_longer_observation() {
        let fleet = homogeneous_fleet(4, 4000);
        let mean = ergodicity_report(&fleet).mean_ensemble_average;
        let loose = convergence_horizon(&fleet[0], mean, 2.0).unwrap();
        let tight = convergence_horizon(&fleet[0], mean, 0.05).unwrap();
        assert!(tight.value() >= loose.value(), "loose {loose}, tight {tight}");
    }

    #[test]
    fn biased_device_never_converges() {
        let values = vec![100.0; 500];
        let device = RegularSeries::new(Seconds::ZERO, Seconds(1.0), values);
        assert!(convergence_horizon(&device, 50.0, 1.0).is_none());
    }

    #[test]
    #[should_panic(expected = "equally long")]
    fn ragged_traces_panic() {
        let a = RegularSeries::new(Seconds::ZERO, Seconds(1.0), vec![1.0; 10]);
        let b = RegularSeries::new(Seconds::ZERO, Seconds(1.0), vec![1.0; 9]);
        ergodicity_report(&[a, b]);
    }

    #[test]
    fn subsample_error_decreases_with_more_devices() {
        // Heterogeneous fleet: averaging more device levels approaches the
        // grand mean monotonically.
        let fleet = heterogeneous_fleet(10, 500);
        let curve = subsample_curve(&fleet, &[1, 3, 10]);
        assert_eq!(curve.len(), 3);
        assert!(curve[0].relative_error > curve[1].relative_error);
        assert!(curve[1].relative_error > curve[2].relative_error);
        // The full fleet reproduces itself exactly.
        assert!(curve[2].relative_error < 1e-9);
    }

    #[test]
    fn subsampling_homogeneous_is_cheaper_than_heterogeneous() {
        // The §6 punchline: on an ergodic (homogeneous) fleet a single
        // device is a decent proxy; on a heterogeneous one it is not.
        let homo = subsample_curve(&homogeneous_fleet(8, 400), &[1])[0];
        let hetero = subsample_curve(&heterogeneous_fleet(8, 400), &[1])[0];
        assert!(
            hetero.relative_error > 2.0 * homo.relative_error,
            "hetero {} vs homo {}",
            hetero.relative_error,
            homo.relative_error
        );
    }

    #[test]
    #[should_panic(expected = "1..=fleet size")]
    fn oversized_subsample_panics() {
        let fleet = homogeneous_fleet(3, 100);
        subsample_curve(&fleet, &[4]);
    }
}
