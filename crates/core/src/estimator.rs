//! The §3.2 Nyquist-rate estimator.
//!
//! Paper, verbatim: *"(a) for a given trace … we compute the FFT and compute
//! the total energy in the signal — the sum of the PSD across all FFT bins;
//! (b) we add the PSD components in each FFT bin until we reach 99% of the
//! total energy …. If we need all bins of the FFT to achieve 99% of the total
//! energy we conclude the signal is probably already aliased and record −1 as
//! the Nyquist rate; (c) otherwise, we report twice the frequency at which we
//! capture 99% of the total energy of the signal as the Nyquist rate."*
//!
//! Two practical choices are configurable and documented:
//!
//! * **Detrending** (default on): the DC bin of a gauge-type metric (e.g. a
//!   temperature around 50 °C) dwarfs the dynamics; with DC included, the
//!   99% threshold is met at bin 0 and every signal looks static. Removing
//!   the mean makes the threshold a statement about the signal's *dynamics*,
//!   which is what sampling-rate selection cares about. (The DC level itself
//!   is recovered by any single sample.)
//! * **Resolution floor** (default on): a trace whose AC energy is captured
//!   at bin 0 would otherwise yield a Nyquist rate of 0 Hz; the floor clamps
//!   the capture frequency to one FFT bin width, bounding reduction ratios
//!   at `N/2` — you cannot learn more from a length-`N` trace.

use serde::{Deserialize, Serialize};
use sweetspot_dsp::fft::FftPlanner;
use sweetspot_dsp::psd::{periodogram_into, welch_into, PsdConfig, PsdScratch, WelchConfig};
use sweetspot_dsp::spectrum::{EnergyCapture, Spectrum};
use sweetspot_dsp::window::Window;
use sweetspot_timeseries::{Hertz, RegularSeries};

/// Which PSD estimator feeds the energy threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PsdMethod {
    /// One FFT over the whole trace (the paper's method): full frequency
    /// resolution, high per-bin variance.
    Periodogram,
    /// Welch's averaged overlapped segments: per-bin variance drops by the
    /// segment count, at the price of resolution `fs / segment_len`. Useful
    /// when the noise floor, not resolution, limits the estimate — but note
    /// the coarser resolution also *raises* the floor-limited minimum
    /// estimate, so prefer the periodogram for very slow signals.
    Welch {
        /// Samples per segment (clamped to the trace length).
        segment_len: usize,
    },
}

/// Estimator configuration.
#[derive(Debug, Clone, Copy)]
pub struct NyquistConfig {
    /// Fraction of total (detrended) energy that must be captured (paper:
    /// 0.99; the ablation also runs 0.999 and 0.9999).
    pub energy_cutoff: f64,
    /// Window applied before the FFT. Default **Hann**: on short windows the
    /// rectangular window's leakage skirts can carry more than `1 − cutoff`
    /// of a tone's energy, pushing the energy crossing far above the true
    /// band edge (a 10× overestimate on a 72-sample window is easy).
    /// `Window::Rectangular` reproduces the paper's raw-FFT methodology
    /// exactly.
    pub window: Window,
    /// Subtract the trace mean before analysis (see module docs).
    pub detrend: bool,
    /// Clamp the capture frequency to at least one FFT bin width (see
    /// module docs).
    pub floor_to_resolution: bool,
    /// PSD estimator behind the threshold (see [`PsdMethod`]).
    pub psd: PsdMethod,
}

impl Default for NyquistConfig {
    fn default() -> Self {
        NyquistConfig {
            energy_cutoff: 0.99,
            window: Window::Hann,
            detrend: true,
            floor_to_resolution: true,
            psd: PsdMethod::Periodogram,
        }
    }
}

impl NyquistConfig {
    /// The paper's literal §3.2 configuration: raw (rectangular-window) FFT
    /// with the 99% cutoff.
    pub fn paper_literal() -> Self {
        NyquistConfig {
            window: Window::Rectangular,
            ..NyquistConfig::default()
        }
    }
}

/// Outcome of a Nyquist-rate estimation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum NyquistEstimate {
    /// The signal's content is captured below half this sampling rate:
    /// sampling at `rate` (or faster) loses at most `1 − cutoff` of the
    /// energy.
    Rate(Hertz),
    /// All FFT bins were needed — the trace is probably already aliased
    /// (the paper records −1).
    Aliased,
}

impl NyquistEstimate {
    /// The estimated rate, or `None` for [`NyquistEstimate::Aliased`].
    pub fn rate(self) -> Option<Hertz> {
        match self {
            NyquistEstimate::Rate(r) => Some(r),
            NyquistEstimate::Aliased => None,
        }
    }

    /// `true` when the trace was judged aliased.
    pub fn is_aliased(self) -> bool {
        matches!(self, NyquistEstimate::Aliased)
    }
}

/// Reusable working storage for [`NyquistEstimator`]: the PSD scratch plus
/// the recycled one-sided power buffer (handed to `Spectrum` per estimate
/// and reclaimed with `Spectrum::into_power` afterwards).
///
/// Every estimator owns one for the classic API, but the
/// [`NyquistEstimator::estimate_samples_with`] path accepts an *external*
/// scratch instead — that is how the fleet engine shares one warmed-up
/// buffer set per worker across 10⁵ member estimators whose own scratch
/// then stays empty (ISSUE 6's memory wall).
#[derive(Debug, Default)]
pub struct EstimatorScratch {
    psd: PsdScratch,
    power: Vec<f64>,
}

impl EstimatorScratch {
    /// Empty scratch; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }

    /// Heap bytes the scratch currently holds (capacities, not lengths).
    pub fn resident_bytes(&self) -> usize {
        self.psd.resident_bytes() + self.power.capacity() * std::mem::size_of::<f64>()
    }
}

/// The estimator. Owns an [`FftPlanner`] plus reusable PSD scratch so
/// repeated estimates over equal-length traces reuse twiddle tables, window
/// tables and every working buffer — the steady-state fleet-study loop
/// performs no heap allocations per trace. Create one per worker thread.
pub struct NyquistEstimator {
    config: NyquistConfig,
    planner: FftPlanner,
    /// Working storage for the owned-scratch API; stays empty when every
    /// estimate goes through [`NyquistEstimator::estimate_samples_with`].
    scratch: EstimatorScratch,
}

impl NyquistEstimator {
    /// Creates an estimator with the given configuration.
    ///
    /// # Panics
    /// Panics unless `0 < energy_cutoff <= 1`.
    pub fn new(config: NyquistConfig) -> Self {
        Self::with_planner(config, FftPlanner::new())
    }

    /// [`NyquistEstimator::new`] around a caller-supplied planner — pass a
    /// clone of a shared planner so a fleet of per-device estimators holds
    /// every FFT/window table once instead of once per device (plan tables
    /// are pure data; sharing never changes results).
    ///
    /// # Panics
    /// Panics unless `0 < energy_cutoff <= 1`.
    pub fn with_planner(config: NyquistConfig, planner: FftPlanner) -> Self {
        assert!(
            config.energy_cutoff > 0.0 && config.energy_cutoff <= 1.0,
            "energy_cutoff must be in (0, 1], got {}",
            config.energy_cutoff
        );
        NyquistEstimator {
            config,
            planner,
            scratch: EstimatorScratch::new(),
        }
    }

    /// Estimator with the paper's defaults (99% cutoff, raw FFT).
    pub fn paper_defaults() -> Self {
        Self::new(NyquistConfig::default())
    }

    /// The active configuration.
    pub fn config(&self) -> &NyquistConfig {
        &self.config
    }

    /// The estimator's FFT planner, for sharing its cached tables with
    /// sibling analyses on the same thread (e.g. the §4.1 dual-rate
    /// detector inside the adaptive controller).
    pub fn planner_mut(&mut self) -> &mut FftPlanner {
        &mut self.planner
    }

    /// Read-only view of the planner, for handle-level statistics
    /// ([`FftPlanner::handle_stats`]) without taking a mutable borrow.
    pub fn planner(&self) -> &FftPlanner {
        &self.planner
    }

    /// Heap bytes of the estimator's *owned* working storage: its scratch
    /// plus the planner clone's private FFT buffers. Zero as long as every
    /// estimate runs through [`NyquistEstimator::estimate_samples_with`]
    /// (the fleet engine asserts exactly that — the planner term is what
    /// catches a transform accidentally routed through planner-owned
    /// scratch, which at 10⁵ members costs gigabytes).
    pub fn scratch_resident_bytes(&self) -> usize {
        self.scratch.resident_bytes() + self.planner.scratch_resident_bytes()
    }

    /// Estimates the Nyquist rate of raw samples taken at `sample_rate`,
    /// through the estimator's own working storage.
    ///
    /// # Panics
    /// Panics if `samples` has fewer than 4 points (no spectral content to
    /// threshold) or `sample_rate` is not positive.
    pub fn estimate_samples(&mut self, samples: &[f64], sample_rate: Hertz) -> NyquistEstimate {
        // The borrow dance (take, use, put back) lets the shared body borrow
        // the planner and the scratch independently; the swap is pointer-
        // sized moves, never an allocation.
        let mut scratch = std::mem::take(&mut self.scratch);
        let estimate = self.estimate_samples_with(&mut scratch, samples, sample_rate);
        self.scratch = scratch;
        estimate
    }

    /// [`NyquistEstimator::estimate_samples`] through caller-owned working
    /// storage — bit-identical results, but a fleet of estimators can share
    /// one warmed-up [`EstimatorScratch`] per worker instead of each holding
    /// its own power/PSD buffers.
    ///
    /// # Panics
    /// Exactly as [`NyquistEstimator::estimate_samples`].
    pub fn estimate_samples_with(
        &mut self,
        scratch: &mut EstimatorScratch,
        samples: &[f64],
        sample_rate: Hertz,
    ) -> NyquistEstimate {
        assert!(
            samples.len() >= 4,
            "need at least 4 samples to estimate a spectrum, got {}",
            samples.len()
        );
        assert!(sample_rate.value() > 0.0, "sample_rate must be positive");
        let mut power = std::mem::take(&mut scratch.power);
        let n = match self.config.psd {
            PsdMethod::Periodogram => {
                periodogram_into(
                    &mut self.planner,
                    &mut scratch.psd,
                    samples,
                    PsdConfig {
                        window: self.config.window,
                        detrend: self.config.detrend,
                    },
                    &mut power,
                );
                samples.len()
            }
            PsdMethod::Welch { segment_len } => welch_into(
                &mut self.planner,
                &mut scratch.psd,
                samples,
                WelchConfig {
                    segment_len,
                    overlap: 0.5,
                    window: self.config.window,
                    detrend: self.config.detrend,
                },
                &mut power,
            ),
        };
        let spectrum = Spectrum::from_psd(power, sample_rate.value(), n);
        let estimate = match spectrum.frequency_capturing_energy(self.config.energy_cutoff) {
            EnergyCapture::AllBinsNeeded => NyquistEstimate::Aliased,
            EnergyCapture::Captured { frequency } => {
                // The paper's literal criterion ("all bins needed") only
                // fires when the cutoff crossing lands in the very last bin.
                // A spectrum that is flat out to the folding frequency — the
                // signature of folded (aliased) content or white noise —
                // crosses the c-cutoff at ≈ c·f_fold instead. Flag that as
                // aliased too: it is the self-consistent generalization of
                // the same test. The `2/√bins` slack absorbs the sampling
                // fluctuation of the crossing point on noisy spectra.
                let fold = spectrum.folding_frequency();
                let slack = 2.0 / (spectrum.bin_count() as f64).sqrt();
                let guard = (self.config.energy_cutoff - slack).max(0.5) * fold;
                if frequency >= guard {
                    NyquistEstimate::Aliased
                } else {
                    let f = if self.config.floor_to_resolution {
                        frequency.max(spectrum.resolution())
                    } else {
                        frequency
                    };
                    NyquistEstimate::Rate(Hertz(2.0 * f))
                }
            }
        };
        scratch.power = spectrum.into_power();
        estimate
    }

    /// Estimates the Nyquist rate of a regular series.
    pub fn estimate_series(&mut self, series: &RegularSeries) -> NyquistEstimate {
        self.estimate_samples(series.values(), series.sample_rate())
    }

    /// [`NyquistEstimator::estimate_series`] through caller-owned working
    /// storage (see [`NyquistEstimator::estimate_samples_with`]).
    pub fn estimate_series_with(
        &mut self,
        scratch: &mut EstimatorScratch,
        series: &RegularSeries,
    ) -> NyquistEstimate {
        self.estimate_samples_with(scratch, series.values(), series.sample_rate())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;
    use sweetspot_timeseries::Seconds;

    fn tone_series(n: usize, fs: f64, freqs: &[(f64, f64)], mean: f64) -> RegularSeries {
        let values = (0..n)
            .map(|i| {
                let t = i as f64 / fs;
                mean + freqs
                    .iter()
                    .map(|&(f, a)| a * (2.0 * PI * f * t).sin())
                    .sum::<f64>()
            })
            .collect();
        RegularSeries::new(Seconds::ZERO, Seconds(1.0 / fs), values)
    }

    #[test]
    fn pure_tone_yields_twice_its_frequency() {
        let mut est = NyquistEstimator::paper_defaults();
        // 0.01 Hz tone sampled at 1 Hz for 1000 s: bin resolution 0.001 Hz.
        let s = tone_series(1000, 1.0, &[(0.01, 1.0)], 0.0);
        match est.estimate_series(&s) {
            NyquistEstimate::Rate(r) => {
                assert!((r.value() - 0.02).abs() < 0.003, "rate {r}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn two_tones_yield_twice_the_higher() {
        let mut est = NyquistEstimator::paper_defaults();
        let s = tone_series(2000, 1.0, &[(0.01, 1.0), (0.05, 0.8)], 0.0);
        let rate = est.estimate_series(&s).rate().unwrap().value();
        assert!((rate - 0.1).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn weak_high_tone_below_one_percent_is_ignored() {
        let mut est = NyquistEstimator::paper_defaults();
        // Second tone carries (0.05)²/2 / ((1² + 0.05²)/2) ≈ 0.25% of energy —
        // under the 1% the cutoff discards (this is the noise-robustness the
        // paper designed the 99% threshold for).
        let s = tone_series(2000, 1.0, &[(0.01, 1.0), (0.2, 0.05)], 0.0);
        let rate = est.estimate_series(&s).rate().unwrap().value();
        assert!(rate < 0.05, "weak tone should be discarded, rate {rate}");
    }

    #[test]
    fn higher_cutoff_keeps_the_weak_tone() {
        let mut est = NyquistEstimator::new(NyquistConfig {
            energy_cutoff: 0.9999,
            ..NyquistConfig::default()
        });
        let s = tone_series(2000, 1.0, &[(0.01, 1.0), (0.2, 0.05)], 0.0);
        let rate = est.estimate_series(&s).rate().unwrap().value();
        assert!((rate - 0.4).abs() < 0.05, "strict cutoff should keep it: {rate}");
    }

    #[test]
    fn estimate_is_monotone_in_cutoff() {
        let s = tone_series(1500, 1.0, &[(0.01, 1.0), (0.07, 0.3), (0.21, 0.1)], 10.0);
        let mut prev = 0.0;
        for cutoff in [0.9, 0.99, 0.999, 0.9999] {
            let mut est = NyquistEstimator::new(NyquistConfig {
                energy_cutoff: cutoff,
                ..NyquistConfig::default()
            });
            let rate = est.estimate_series(&s).rate().unwrap().value();
            assert!(rate >= prev - 1e-12, "cutoff {cutoff}: {rate} < {prev}");
            prev = rate;
        }
    }

    #[test]
    fn dc_heavy_gauge_is_not_mistaken_for_static() {
        let mut est = NyquistEstimator::paper_defaults();
        // 50-unit mean dwarfs a 1-unit tone; detrending must still find it.
        let s = tone_series(1000, 1.0, &[(0.05, 1.0)], 50.0);
        let rate = est.estimate_series(&s).rate().unwrap().value();
        assert!((rate - 0.1).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn without_detrend_dc_swallows_the_threshold() {
        let mut est = NyquistEstimator::new(NyquistConfig {
            detrend: false,
            ..NyquistConfig::default()
        });
        let s = tone_series(1000, 1.0, &[(0.05, 1.0)], 50.0);
        // DC power 2500 ≫ AC power 0.5 ⇒ capture at bin 0 ⇒ floored to one
        // bin width (resolution 0.001 Hz → rate 0.002 Hz).
        let rate = est.estimate_series(&s).rate().unwrap().value();
        assert!(rate < 0.005, "rate {rate}");
    }

    #[test]
    fn constant_signal_floors_to_resolution() {
        let mut est = NyquistEstimator::paper_defaults();
        let s = RegularSeries::new(Seconds::ZERO, Seconds(1.0), vec![5.0; 1000]);
        let rate = est.estimate_series(&s).rate().unwrap().value();
        assert!((rate - 0.002).abs() < 1e-12, "rate {rate}"); // 2 × (1/1000)
    }

    #[test]
    fn no_floor_reports_zero_for_constant() {
        let mut est = NyquistEstimator::new(NyquistConfig {
            floor_to_resolution: false,
            ..NyquistConfig::default()
        });
        let s = RegularSeries::new(Seconds::ZERO, Seconds(1.0), vec![5.0; 1000]);
        assert_eq!(est.estimate_series(&s).rate().unwrap().value(), 0.0);
    }

    #[test]
    fn white_noise_is_reported_aliased() {
        let mut est = NyquistEstimator::paper_defaults();
        // White noise spreads energy across all bins ~uniformly: reaching
        // 99% requires ~99% of bins — including the last one.
        let mut state = 0x12345678u64;
        let values: Vec<f64> = (0..2048)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
            })
            .collect();
        let s = RegularSeries::new(Seconds::ZERO, Seconds(1.0), values);
        assert!(est.estimate_series(&s).is_aliased());
    }

    #[test]
    fn aliased_tone_looks_like_low_frequency() {
        // A 0.45 Hz tone sampled at 1 Hz is fine; sampled at 0.5 Hz it folds
        // to 0.05 Hz. The estimator *cannot* see this from the slow trace
        // alone — it reports a (wrong) low rate, which is exactly why §4.1
        // needs the dual-rate detector.
        let mut est = NyquistEstimator::paper_defaults();
        let fs = 0.5;
        let s = tone_series(500, fs, &[(0.45, 1.0)], 0.0);
        let rate = est.estimate_series(&s).rate().unwrap().value();
        assert!((rate - 0.1).abs() < 0.01, "folded rate {rate}");
    }

    #[test]
    fn estimate_never_exceeds_sampling_rate() {
        let mut est = NyquistEstimator::paper_defaults();
        for n in [64usize, 500, 1001] {
            let s = tone_series(n, 2.0, &[(0.9, 1.0), (0.3, 0.5)], 3.0);
            if let NyquistEstimate::Rate(r) = est.estimate_series(&s) {
                assert!(r.value() <= 2.0 + 1e-12);
            }
        }
    }

    #[test]
    fn welch_psd_method_stabilizes_noisy_estimates() {
        // A 0.02 Hz tone plus noise at 10% amplitude: the single-shot
        // periodogram's noisy bins scatter the 99% crossing across repeated
        // noise draws; Welch's averaged floor keeps it near the tone.
        let mut lcg = 0xFEED_F00Du64;
        let mut noise = move || {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (((lcg >> 33) as f64 / (1u64 << 31) as f64) - 1.0) * 0.1
        };
        let values: Vec<f64> = (0..8192)
            .map(|i| (2.0 * PI * 0.02 * i as f64).sin() + noise())
            .collect();
        let s = RegularSeries::new(Seconds::ZERO, Seconds(1.0), values);

        let mut welch_est = NyquistEstimator::new(NyquistConfig {
            psd: PsdMethod::Welch { segment_len: 512 },
            ..NyquistConfig::default()
        });
        match welch_est.estimate_series(&s) {
            NyquistEstimate::Rate(r) => {
                // Resolution is 1/512 ≈ 0.002; the tone at 0.02 must be
                // captured within a few Welch bins.
                assert!(
                    (r.value() - 0.04).abs() < 0.02,
                    "welch rate {r} should track the tone"
                );
            }
            NyquistEstimate::Aliased => panic!("welch should suppress the noise floor"),
        }
    }

    #[test]
    fn welch_resolution_floor_is_coarser() {
        // A constant trace floors at one *segment* bin under Welch — coarser
        // than the periodogram's full-trace bin.
        let s = RegularSeries::new(Seconds::ZERO, Seconds(1.0), vec![3.0; 4096]);
        let fine = NyquistEstimator::new(NyquistConfig::default())
            .estimate_series(&s)
            .rate()
            .unwrap();
        let coarse = NyquistEstimator::new(NyquistConfig {
            psd: PsdMethod::Welch { segment_len: 256 },
            ..NyquistConfig::default()
        })
        .estimate_series(&s)
        .rate()
        .unwrap();
        assert!(
            coarse.value() > fine.value() * 10.0,
            "welch floor {coarse} vs periodogram floor {fine}"
        );
    }

    #[test]
    #[should_panic(expected = "at least 4 samples")]
    fn tiny_trace_panics() {
        let mut est = NyquistEstimator::paper_defaults();
        est.estimate_samples(&[1.0, 2.0], Hertz(1.0));
    }

    #[test]
    #[should_panic(expected = "energy_cutoff")]
    fn invalid_cutoff_panics() {
        NyquistEstimator::new(NyquistConfig {
            energy_cutoff: 1.5,
            ..NyquistConfig::default()
        });
    }
}
