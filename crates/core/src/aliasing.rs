//! The §4.1 dual-rate aliasing detector (after Penny, Friswell & Garvey).
//!
//! Paper: *"sample at two distinct frequencies f1 and f2, where f1 > f2 and
//! f1/f2 is not an integer. If aliasing occurs — i.e., the underlying signal
//! has frequency terms that are larger than f2/2 — then comparing the
//! discrete fourier transforms of the two sampled signals would show
//! discrepancies; for example, frequencies below f2/2 will match in both
//! spectra but the higher frequencies will not match."*
//!
//! Implementation notes:
//!
//! * The two traces have different lengths and bin grids, so bin-by-bin FFT
//!   comparison is not possible. Instead the band `(0, f2/2)` is split into
//!   `bands` equal sub-bands and the *power* of each trace in each sub-band
//!   is compared. Folded content lands in some sub-band regardless of where,
//!   so nothing slips between check points.
//! * Both periodograms use a Hann window: the rectangular window's leakage
//!   skirts differ between the two trace lengths and would masquerade as
//!   discrepancies (this is the "noise … can be filtered using standard
//!   techniques" remark in §4.1, applied to leakage).
//! * Sub-bands holding less than `relative_floor` of the total in-band power
//!   are skipped — small-amplitude noise tolerance.
//! * Content that aliases under *both* rates folds onto different
//!   frequencies in each spectrum thanks to the non-integer ratio (footnote
//!   1 of the paper), so it still shows up as a band-power mismatch.

use sweetspot_dsp::fft::FftPlanner;
use sweetspot_dsp::psd::{periodogram_into, PsdConfig, PsdScratch};
use sweetspot_dsp::spectrum::Spectrum;
use sweetspot_dsp::window::Window;
use sweetspot_timeseries::{Hertz, RegularSeries};

/// Detector configuration.
#[derive(Debug, Clone, Copy)]
pub struct DualRateConfig {
    /// Number of comparison sub-bands over `(0, f2/2)`.
    pub bands: usize,
    /// Relative band-power mismatch (w.r.t. the larger of the two readings)
    /// that counts as a discrepancy.
    pub tolerance: f64,
    /// Sub-bands holding less than this fraction of the total in-band power
    /// (in both traces) are skipped as noise.
    pub relative_floor: f64,
}

impl Default for DualRateConfig {
    fn default() -> Self {
        DualRateConfig {
            bands: 24,
            tolerance: 0.5,
            relative_floor: 0.02,
        }
    }
}

/// Verdict of a dual-rate comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct AliasingVerdict {
    /// `true` when the spectra disagree below `f2/2` — the slower rate is
    /// aliasing.
    pub aliased: bool,
    /// Largest relative band-power discrepancy observed.
    pub max_discrepancy: f64,
    /// Center frequency (Hz) of the most discrepant band, if any were
    /// compared.
    pub worst_frequency: Option<f64>,
    /// Number of sub-bands actually compared (above the floor).
    pub compared: usize,
}

/// Ratio guard: `f1/f2` must not be (near-)integral, or content aliased
/// under both rates folds onto *the same* frequencies and cancels out of the
/// comparison (paper footnote 1).
///
/// Returns `true` when the ratio is safely non-integer.
pub fn ratio_is_valid(f1: Hertz, f2: Hertz) -> bool {
    if f1.value() <= f2.value() || f2.value() <= 0.0 {
        return false;
    }
    let ratio = f1.value() / f2.value();
    (ratio - ratio.round()).abs() > 1e-6
}

/// Compares two traces of the same signal sampled at different rates and
/// decides whether the *slower* one is aliased.
///
/// Convenience wrapper around [`detect_aliasing_with`] that builds a
/// throwaway planner; repeated callers (the §4.2 adaptive controller, the
/// detector ablation) should thread their own planner through so twiddle
/// and window tables are computed once.
pub fn detect_aliasing(
    fast: &RegularSeries,
    slow: &RegularSeries,
    cfg: DualRateConfig,
) -> AliasingVerdict {
    let mut planner = FftPlanner::new();
    detect_aliasing_with(&mut planner, fast, slow, cfg)
}

/// [`detect_aliasing`] against a caller-owned [`FftPlanner`].
///
/// `fast` must be sampled at a higher rate than `slow`, with a non-integer
/// rate ratio (checked). Both should cover the same time window.
///
/// # Panics
/// Panics if the ratio guard fails, either trace has fewer than 16 samples,
/// or the configuration is out of range.
pub fn detect_aliasing_with(
    planner: &mut FftPlanner,
    fast: &RegularSeries,
    slow: &RegularSeries,
    cfg: DualRateConfig,
) -> AliasingVerdict {
    detect_aliasing_scratch(planner, &mut DetectScratch::default(), fast, slow, cfg)
}

/// Reusable working storage for [`detect_aliasing_scratch`]: the PSD
/// scratch, the two one-sided power buffers and the two band-power tables.
/// Keep one per long-lived detector (the §4.2 adaptive controller owns one)
/// so steady-state verification performs no heap allocations.
#[derive(Debug, Default)]
pub struct DetectScratch {
    psd: PsdScratch,
    fast_power: Vec<f64>,
    slow_power: Vec<f64>,
    fast_bands: Vec<f64>,
    slow_bands: Vec<f64>,
}

impl DetectScratch {
    /// Empty scratch; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }

    /// Heap bytes the scratch currently holds (capacities, not lengths) —
    /// the per-worker memory-footprint accounting of the fleet engine.
    pub fn resident_bytes(&self) -> usize {
        self.psd.resident_bytes()
            + (self.fast_power.capacity()
                + self.slow_power.capacity()
                + self.fast_bands.capacity()
                + self.slow_bands.capacity())
                * std::mem::size_of::<f64>()
    }
}

/// [`detect_aliasing_with`] with caller-owned scratch: identical verdicts,
/// zero steady-state heap allocations.
///
/// # Panics
/// Exactly as [`detect_aliasing_with`].
pub fn detect_aliasing_scratch(
    planner: &mut FftPlanner,
    scratch: &mut DetectScratch,
    fast: &RegularSeries,
    slow: &RegularSeries,
    cfg: DualRateConfig,
) -> AliasingVerdict {
    let f1 = fast.sample_rate();
    let f2 = slow.sample_rate();
    assert!(
        ratio_is_valid(f1, f2),
        "need f1 > f2 with non-integer ratio, got f1={f1}, f2={f2}"
    );
    assert!(
        fast.len() >= 16 && slow.len() >= 16,
        "need at least 16 samples per trace (got {} and {})",
        fast.len(),
        slow.len()
    );
    assert!(cfg.bands > 0, "need at least one band");
    assert!(cfg.tolerance > 0.0, "tolerance must be positive");
    assert!(
        (0.0..1.0).contains(&cfg.relative_floor),
        "relative_floor must be in [0,1)"
    );

    let psd_cfg = PsdConfig {
        window: Window::Hann,
        detrend: true,
    };
    // Both periodograms run through the shared scratch; the power buffers
    // cycle through `Spectrum` and back so nothing is reallocated per call.
    let mut fast_power = std::mem::take(&mut scratch.fast_power);
    periodogram_into(planner, &mut scratch.psd, fast.values(), psd_cfg, &mut fast_power);
    let spec_fast = Spectrum::from_psd(fast_power, f1.value(), fast.len());
    let mut slow_power = std::mem::take(&mut scratch.slow_power);
    periodogram_into(planner, &mut scratch.psd, slow.values(), psd_cfg, &mut slow_power);
    let spec_slow = Spectrum::from_psd(slow_power, f2.value(), slow.len());

    let half = f2.value() / 2.0;
    let band_width = half / cfg.bands as f64;
    // Skip the lowest band boundary region near DC? No: detrend removed DC,
    // and both windows smear residual low-frequency energy identically
    // enough at the band granularity.
    let fast_bands = &mut scratch.fast_bands;
    let slow_bands = &mut scratch.slow_bands;
    fast_bands.clear();
    slow_bands.clear();
    for k in 0..cfg.bands {
        let lo = k as f64 * band_width;
        let hi = (k + 1) as f64 * band_width;
        fast_bands.push(spec_fast.power_in_band(lo, hi * (1.0 - 1e-12)));
        slow_bands.push(spec_slow.power_in_band(lo, hi * (1.0 - 1e-12)));
    }
    scratch.fast_power = spec_fast.into_power();
    scratch.slow_power = spec_slow.into_power();
    let total: f64 = fast_bands
        .iter()
        .sum::<f64>()
        .max(slow_bands.iter().sum::<f64>());
    if total <= 0.0 {
        // No in-band energy at all: nothing can mismatch.
        return AliasingVerdict {
            aliased: false,
            max_discrepancy: 0.0,
            worst_frequency: None,
            compared: 0,
        };
    }

    let mut max_disc = 0.0f64;
    let mut worst = None;
    let mut compared = 0usize;
    for k in 0..cfg.bands {
        let pf = fast_bands[k];
        let ps = slow_bands[k];
        let peak = pf.max(ps);
        if peak < cfg.relative_floor * total {
            continue;
        }
        compared += 1;
        let disc = (pf - ps).abs() / peak;
        if disc > max_disc {
            max_disc = disc;
            worst = Some((k as f64 + 0.5) * band_width);
        }
    }
    AliasingVerdict {
        aliased: max_disc > cfg.tolerance,
        max_discrepancy: max_disc,
        worst_frequency: worst,
        compared,
    }
}

/// Picks a companion (secondary) rate for `primary` with a guaranteed
/// non-integer ratio: `primary / φ` where φ ≈ 1.618 (the most irrational
/// ratio, maximizing fold separation).
pub fn companion_rate(primary: Hertz) -> Hertz {
    Hertz(primary.value() / COMPANION_RATIO)
}

/// The primary-to-companion rate ratio φ (golden ratio — the "most
/// irrational" choice, maximizing fold separation). Exported so cost models
/// can price the verification stream consistently: continuous dual-rate
/// verification costs `1 + 1/φ` samples per primary-stream sample.
pub const COMPANION_RATIO: f64 = 1.618_033_988_749_895;

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;
    use sweetspot_timeseries::Seconds;

    /// Samples `f(t)` at `rate` for `duration` seconds.
    fn sample(rate: f64, duration: f64, f: impl Fn(f64) -> f64) -> RegularSeries {
        let n = (rate * duration).round() as usize;
        let values = (0..n).map(|i| f(i as f64 / rate)).collect();
        RegularSeries::new(Seconds::ZERO, Seconds(1.0 / rate), values)
    }

    fn two_tone(f_lo: f64, f_hi: f64, a_hi: f64) -> impl Fn(f64) -> f64 {
        move |t| (2.0 * PI * f_lo * t).sin() + a_hi * (2.0 * PI * f_hi * t).sin()
    }

    #[test]
    fn clean_signal_is_not_flagged() {
        // Content at 0.05/0.02 Hz; f2 = 0.618 Hz ⇒ f2/2 = 0.309 ≫ 0.05.
        let signal = two_tone(0.05, 0.02, 0.5);
        let fast = sample(1.0, 2000.0, &signal);
        let slow = sample(1.0 / 1.618, 2000.0, &signal);
        let v = detect_aliasing(&fast, &slow, DualRateConfig::default());
        assert!(!v.aliased, "verdict {v:?}");
        assert!(v.compared > 0);
    }

    #[test]
    fn aliased_signal_is_flagged() {
        // Tone at 0.4 Hz: fine at f1 = 1 Hz (fold 0.5) but aliased at
        // f2 = 0.618 Hz (fold 0.309): folds to 0.218 Hz.
        let signal = two_tone(0.05, 0.4, 1.0);
        let fast = sample(1.0, 2000.0, &signal);
        let slow = sample(1.0 / 1.618, 2000.0, &signal);
        let v = detect_aliasing(&fast, &slow, DualRateConfig::default());
        assert!(v.aliased, "verdict {v:?}");
        assert!(v.max_discrepancy > 0.8);
    }

    #[test]
    fn aliased_under_both_rates_still_differs() {
        // 0.9 Hz tone aliases under both 1 Hz and 0.618 Hz sampling, folding
        // to 0.1 Hz and 0.282 Hz respectively — the non-integer ratio makes
        // the folds land apart, so the detector still fires.
        let signal = two_tone(0.01, 0.9, 1.0);
        let fast = sample(1.0, 2000.0, &signal);
        let slow = sample(1.0 / 1.618, 2000.0, &signal);
        let v = detect_aliasing(&fast, &slow, DualRateConfig::default());
        assert!(v.aliased, "verdict {v:?}");
    }

    #[test]
    fn tiny_but_clean_signal_not_flagged() {
        let signal = |t: f64| 1e-9 * (2.0 * PI * 0.01 * t).sin();
        let fast = sample(1.0, 1000.0, signal);
        let slow = sample(1.0 / 1.618, 1000.0, signal);
        let v = detect_aliasing(&fast, &slow, DualRateConfig::default());
        assert!(!v.aliased, "amplitude does not matter, band shape does: {v:?}");
    }

    #[test]
    fn zero_signal_compares_nothing() {
        let fast = sample(1.0, 500.0, |_| 5.0); // constant → detrended to 0
        let slow = sample(1.0 / 1.618, 500.0, |_| 5.0);
        let v = detect_aliasing(&fast, &slow, DualRateConfig::default());
        assert!(!v.aliased);
        assert_eq!(v.compared, 0);
    }

    #[test]
    fn worst_frequency_is_reported_near_the_fold() {
        let signal = two_tone(0.02, 0.4, 2.0);
        let fast = sample(1.0, 4000.0, &signal);
        let slow = sample(1.0 / 1.618, 4000.0, &signal);
        let v = detect_aliasing(&fast, &slow, DualRateConfig::default());
        // 0.4 Hz folds under f2=0.618: |0.4 − 0.618| = 0.218 Hz. Band width
        // is 0.309/24 ≈ 0.0129, so the worst band centers within one band.
        let worst = v.worst_frequency.unwrap();
        assert!(
            (worst - 0.218).abs() < 0.013,
            "worst at {worst}, expected ≈0.218"
        );
    }

    #[test]
    fn noise_robustness_with_small_jitter() {
        // Same clean signal plus small independent pseudo-noise per trace:
        // must not trip the detector.
        let mut s1 = 0xABCDEFu64;
        let mut s2 = 0x123456u64;
        let noise = move |state: &mut u64| {
            *state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (((*state >> 33) as f64 / (1u64 << 31) as f64) - 1.0) * 0.01
        };
        let base = two_tone(0.03, 0.01, 0.7);
        let fast_vals: Vec<f64> = (0..4000).map(|i| base(i as f64) + noise(&mut s1)).collect();
        let slow_vals: Vec<f64> = (0..2472)
            .map(|i| base(i as f64 * 1.618) + noise(&mut s2))
            .collect();
        let fast = RegularSeries::new(Seconds::ZERO, Seconds(1.0), fast_vals);
        let slow = RegularSeries::new(Seconds::ZERO, Seconds(1.618), slow_vals);
        let v = detect_aliasing(&fast, &slow, DualRateConfig::default());
        assert!(!v.aliased, "1% noise must not fire the detector: {v:?}");
    }

    #[test]
    fn ratio_guard() {
        assert!(ratio_is_valid(Hertz(1.0), Hertz(1.0 / 1.618)));
        assert!(!ratio_is_valid(Hertz(1.0), Hertz(0.5))); // integer ratio
        assert!(!ratio_is_valid(Hertz(1.0), Hertz(1.0))); // equal
        assert!(!ratio_is_valid(Hertz(0.5), Hertz(1.0))); // f1 < f2
    }

    #[test]
    fn companion_rate_is_valid() {
        for r in [1.0, 0.01, 1e-4] {
            let primary = Hertz(r);
            assert!(ratio_is_valid(primary, companion_rate(primary)));
        }
    }

    #[test]
    #[should_panic(expected = "non-integer ratio")]
    fn integer_ratio_panics() {
        let signal = |t: f64| (2.0 * PI * 0.05 * t).sin();
        let fast = sample(1.0, 500.0, signal);
        let slow = sample(0.5, 500.0, signal);
        detect_aliasing(&fast, &slow, DualRateConfig::default());
    }
}
