//! Moving-window Nyquist tracking (Figure 7).
//!
//! The paper tracks the inferred Nyquist rate of a temperature signal with a
//! 6-hour window stepping every 5 minutes; the timestamps mark the beginning
//! of each window. [`track`] reproduces that computation for any series.

use crate::estimator::{NyquistConfig, NyquistEstimate, NyquistEstimator};
use sweetspot_timeseries::windowing::moving_windows;
use sweetspot_timeseries::{Hertz, RegularSeries, Seconds};

/// Tracker configuration.
#[derive(Debug, Clone, Copy)]
pub struct TrackerConfig {
    /// Window duration (paper: 6 hours).
    pub window: Seconds,
    /// Step between window starts (paper: 5 minutes).
    pub step: Seconds,
    /// Estimator settings applied per window.
    pub estimator: NyquistConfig,
}

impl TrackerConfig {
    /// The paper's Figure 7 geometry: 6-hour windows, 5-minute steps.
    pub fn paper_fig7() -> Self {
        TrackerConfig {
            window: Seconds::from_hours(6.0),
            step: Seconds::from_minutes(5.0),
            estimator: NyquistConfig::default(),
        }
    }
}

/// One tracked point: the estimate for the window starting at `window_start`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrackedPoint {
    /// Beginning of the moving window (Figure 7's x-axis).
    pub window_start: Seconds,
    /// The §3.2 estimate for this window.
    pub estimate: NyquistEstimate,
}

/// Runs the §3.2 estimator over every moving window of `series`.
///
/// Windows too short for the estimator (< 4 samples) are skipped.
pub fn track(series: &RegularSeries, cfg: TrackerConfig) -> Vec<TrackedPoint> {
    let mut estimator = NyquistEstimator::new(cfg.estimator);
    let rate = series.sample_rate();
    moving_windows(series, cfg.window, cfg.step)
        .filter(|w| w.values.len() >= 4)
        .map(|w| TrackedPoint {
            window_start: w.start,
            estimate: estimator.estimate_samples(&w.values, rate),
        })
        .collect()
}

/// Summary of a tracked run: min/max/mean of the (non-aliased) estimates and
/// the count of aliased windows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrackSummary {
    /// Lowest non-aliased estimate.
    pub min_rate: Option<Hertz>,
    /// Highest non-aliased estimate.
    pub max_rate: Option<Hertz>,
    /// Mean of non-aliased estimates.
    pub mean_rate: Option<Hertz>,
    /// Number of windows judged aliased.
    pub aliased_windows: usize,
    /// Total number of windows tracked.
    pub total_windows: usize,
}

/// Summarizes a [`track`] result.
pub fn summarize(points: &[TrackedPoint]) -> TrackSummary {
    let rates: Vec<f64> = points
        .iter()
        .filter_map(|p| p.estimate.rate().map(|r| r.value()))
        .collect();
    let aliased = points.len() - rates.len();
    if rates.is_empty() {
        return TrackSummary {
            min_rate: None,
            max_rate: None,
            mean_rate: None,
            aliased_windows: aliased,
            total_windows: points.len(),
        };
    }
    let min = rates.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = rates.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let mean = rates.iter().sum::<f64>() / rates.len() as f64;
    TrackSummary {
        min_rate: Some(Hertz(min)),
        max_rate: Some(Hertz(max)),
        mean_rate: Some(Hertz(mean)),
        aliased_windows: aliased,
        total_windows: points.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    /// A signal whose band edge doubles halfway through.
    fn regime_change_series() -> RegularSeries {
        let fs = 1.0;
        let n = 20_000;
        let values: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 / fs;
                let slow = (2.0 * PI * 0.002 * t).sin();
                if i < n / 2 {
                    slow
                } else {
                    slow + 0.8 * (2.0 * PI * 0.02 * t).sin()
                }
            })
            .collect();
        RegularSeries::new(Seconds::ZERO, Seconds(1.0 / fs), values)
    }

    fn cfg(window: f64, step: f64) -> TrackerConfig {
        TrackerConfig {
            window: Seconds(window),
            step: Seconds(step),
            estimator: NyquistConfig::default(),
        }
    }

    #[test]
    fn tracker_sees_the_regime_change() {
        let series = regime_change_series();
        let points = track(&series, cfg(2000.0, 500.0));
        assert!(!points.is_empty());
        // Early windows: rate ≈ 2×0.002 = 0.004; late: ≈ 2×0.02 = 0.04.
        let early: Vec<f64> = points
            .iter()
            .filter(|p| p.window_start.value() < 4000.0)
            .filter_map(|p| p.estimate.rate().map(|r| r.value()))
            .collect();
        let late: Vec<f64> = points
            .iter()
            .filter(|p| p.window_start.value() > 12_000.0)
            .filter_map(|p| p.estimate.rate().map(|r| r.value()))
            .collect();
        assert!(!early.is_empty() && !late.is_empty());
        let early_mean = early.iter().sum::<f64>() / early.len() as f64;
        let late_mean = late.iter().sum::<f64>() / late.len() as f64;
        assert!(
            late_mean > early_mean * 4.0,
            "early {early_mean}, late {late_mean}"
        );
    }

    #[test]
    fn window_starts_step_correctly() {
        let series = regime_change_series();
        let points = track(&series, cfg(2000.0, 500.0));
        for w in points.windows(2) {
            assert!((w[1].window_start.value() - w[0].window_start.value() - 500.0).abs() < 1e-9);
        }
        assert_eq!(points[0].window_start, Seconds::ZERO);
    }

    #[test]
    fn stationary_signal_tracks_flat() {
        let fs = 1.0;
        let values: Vec<f64> = (0..10_000)
            .map(|i| (2.0 * PI * 0.01 * i as f64).sin())
            .collect();
        let series = RegularSeries::new(Seconds::ZERO, Seconds(1.0), values);
        let points = track(&series, cfg(2000.0, 1000.0));
        let rates: Vec<f64> = points
            .iter()
            .filter_map(|p| p.estimate.rate().map(|r| r.value()))
            .collect();
        assert_eq!(rates.len(), points.len(), "no window should alias");
        for &r in &rates {
            assert!((r - 0.02).abs() < 0.005, "rate {r} drifted (fs={fs})");
        }
    }

    #[test]
    fn summary_aggregates() {
        let series = regime_change_series();
        let points = track(&series, cfg(2000.0, 500.0));
        let s = summarize(&points);
        assert_eq!(s.total_windows, points.len());
        assert!(s.min_rate.unwrap().value() <= s.mean_rate.unwrap().value());
        assert!(s.mean_rate.unwrap().value() <= s.max_rate.unwrap().value());
    }

    #[test]
    fn summary_of_empty_is_none() {
        let s = summarize(&[]);
        assert!(s.min_rate.is_none());
        assert_eq!(s.total_windows, 0);
    }

    #[test]
    fn paper_geometry_constructor() {
        let c = TrackerConfig::paper_fig7();
        assert_eq!(c.window.value(), 6.0 * 3600.0);
        assert_eq!(c.step.value(), 300.0);
    }
}
