//! # sweetspot-core
//!
//! The paper's primary contribution, as a library:
//!
//! * [`estimator`] — the §3.2 Nyquist-rate estimator: FFT → PSD → accumulate
//!   bin energy to a 99% cutoff → report `2·f₉₉`, or "aliased" when every
//!   bin is needed.
//! * [`aliasing`] — the §4.1 dual-rate aliasing detector after Penny et al.:
//!   sample at `f1 > f2` (non-integer ratio) and compare the spectra below
//!   `f2/2`.
//! * [`adaptive`] — the §4.2 dynamic sampling controller: probe with
//!   multiplicative rate increases while aliasing persists, settle at
//!   headroom × estimated Nyquist, adaptively decrease, and optionally
//!   remember past maxima to re-ramp quickly.
//! * [`tracker`] — the moving-window Nyquist tracker behind Figure 7.
//! * [`reconstruct`] — the §4.3 reconstruction: decimate to the Nyquist rate,
//!   low-pass re-synthesize, optionally re-quantize; reports the L2 distance
//!   of Figure 6.
//! * [`recommend`] — the operational endpoint: trace in, decision out
//!   (keep / reduce / increase / inspect) with the savings attached.
//! * [`reduction`] — "possible reduction ratio" bookkeeping (Figures 1 and 4).
//! * [`multivariate`] — §6's multivariate extension: joint estimates and
//!   correlation-preservation checks.
//! * [`ergodicity`] — §6's ergodicity probe: time-averages vs fleet-ensemble
//!   averages, and how long a single device must be observed before the two
//!   agree (the assumption behind canarying).
//!
//! The crate is deliberately independent of where the signals come from: it
//! consumes [`sweetspot_timeseries::RegularSeries`] and a [`SignalSource`]
//! trait that the monitoring simulator (and the synthetic telemetry crate)
//! implement.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod adaptive;
pub mod aliasing;
pub mod ergodicity;
pub mod estimator;
pub mod multivariate;
pub mod reconstruct;
pub mod recommend;
pub mod reduction;
pub mod source;
pub mod tracker;

pub use adaptive::{AdaptiveConfig, AdaptiveSampler, EpochReport};
pub use aliasing::{
    detect_aliasing, detect_aliasing_scratch, detect_aliasing_with, AliasingVerdict,
    DetectScratch, DualRateConfig,
};
pub use estimator::{NyquistConfig, NyquistEstimate, NyquistEstimator};
pub use source::SignalSource;
