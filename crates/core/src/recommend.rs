//! The operational endpoint: from a measured trace to a sampling-rate
//! recommendation.
//!
//! Everything else in this crate computes *numbers*; operators need a
//! *decision*. [`recommend`] composes the §3.2 estimator with the paper's
//! operational guidance into one call: keep the current rate, reduce it (by
//! how much, saving how many samples), increase it, or escalate the trace
//! for inspection (the paper's −1 / aliased case).

use crate::estimator::{NyquistConfig, NyquistEstimate, NyquistEstimator};
use serde::{Deserialize, Serialize};
use sweetspot_timeseries::{Hertz, RegularSeries};

/// Recommendation policy knobs.
#[derive(Debug, Clone, Copy)]
pub struct RecommendConfig {
    /// Estimator settings.
    pub estimator: NyquistConfig,
    /// Sample at `headroom × estimated Nyquist rate` (§4.2's safety margin).
    pub headroom: f64,
    /// Only recommend a change when it moves the rate by at least this
    /// factor (changing every poller's config for a 5% saving is not worth
    /// the churn).
    pub min_change_factor: f64,
}

impl Default for RecommendConfig {
    fn default() -> Self {
        RecommendConfig {
            estimator: NyquistConfig::default(),
            headroom: 1.25,
            min_change_factor: 2.0,
        }
    }
}

/// The decision for one trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Action {
    /// Current rate is about right (within the change threshold).
    Keep,
    /// Reduce to the recommended rate; the ratio is the sampling-cost
    /// saving factor.
    Reduce {
        /// Rate to move to.
        to: Hertz,
        /// `current / to` — how many times fewer samples.
        saving_factor: f64,
    },
    /// Increase to the recommended rate: the trace is under-sampled but the
    /// estimator could still place a (folded) band edge, so the recommended
    /// rate is a *lower bound* — re-run after the change.
    Increase {
        /// Rate to move to (at least).
        to: Hertz,
    },
    /// The trace looks aliased (or too noisy to assess): run the §4.1
    /// dual-rate probe / §4.2 controller instead of trusting a number.
    Inspect,
}

/// A full recommendation record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Recommendation {
    /// The rate the trace is currently sampled at.
    pub current_rate: Hertz,
    /// The §3.2 estimate that drove the decision (None = aliased).
    pub estimated_nyquist: Option<Hertz>,
    /// The decision.
    pub action: Action,
}

impl Recommendation {
    /// Samples saved per day if the recommendation is followed
    /// (0 for [`Action::Keep`] and [`Action::Inspect`]; negative for
    /// [`Action::Increase`] — it costs samples).
    pub fn samples_saved_per_day(&self) -> f64 {
        match self.action {
            Action::Reduce { to, .. } => (self.current_rate.value() - to.value()) * 86_400.0,
            Action::Increase { to } => (self.current_rate.value() - to.value()) * 86_400.0,
            _ => 0.0,
        }
    }
}

/// Produces a recommendation for a measured (pre-cleaned) trace.
///
/// # Panics
/// Panics on configs with `headroom < 1` or `min_change_factor < 1`, and on
/// traces the estimator rejects (fewer than 4 samples).
pub fn recommend(series: &RegularSeries, cfg: RecommendConfig) -> Recommendation {
    assert!(cfg.headroom >= 1.0, "headroom must be ≥ 1");
    assert!(cfg.min_change_factor >= 1.0, "min_change_factor must be ≥ 1");
    let current = series.sample_rate();
    let mut estimator = NyquistEstimator::new(cfg.estimator);
    match estimator.estimate_series(series) {
        NyquistEstimate::Aliased => Recommendation {
            current_rate: current,
            estimated_nyquist: None,
            action: Action::Inspect,
        },
        NyquistEstimate::Rate(nyq) => {
            let target = Hertz(nyq.value() * cfg.headroom);
            let action = if target.value() > current.value() {
                // Under-sampled: the estimate is folded, so the true need is
                // at least this much.
                Action::Increase { to: target }
            } else if current.value() / target.value() >= cfg.min_change_factor {
                Action::Reduce {
                    to: target,
                    saving_factor: current.value() / target.value(),
                }
            } else {
                Action::Keep
            };
            Recommendation {
                current_rate: current,
                estimated_nyquist: Some(nyq),
                action,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;
    use sweetspot_timeseries::Seconds;

    fn tone_series(n: usize, fs: f64, f: f64) -> RegularSeries {
        RegularSeries::new(
            Seconds::ZERO,
            Seconds(1.0 / fs),
            (0..n).map(|i| (2.0 * PI * f * i as f64 / fs).sin()).collect(),
        )
    }

    #[test]
    fn oversampled_trace_gets_reduce() {
        // 0.001 Hz tone sampled at 1 Hz: ~400x too fast.
        let s = tone_series(4000, 1.0, 0.001);
        let r = recommend(&s, RecommendConfig::default());
        match r.action {
            Action::Reduce { to, saving_factor } => {
                assert!(saving_factor > 100.0, "saving {saving_factor}");
                assert!(to.value() < 0.01);
                assert!(r.samples_saved_per_day() > 80_000.0);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn well_matched_trace_gets_keep() {
        // Tone at 0.3 Hz sampled at 1 Hz: Nyquist rate 0.6, ×1.25 headroom
        // = 0.75 — less than 2× below current ⇒ keep.
        let s = tone_series(2000, 1.0, 0.3);
        let r = recommend(&s, RecommendConfig::default());
        assert_eq!(r.action, Action::Keep);
        assert_eq!(r.samples_saved_per_day(), 0.0);
    }

    #[test]
    fn noisy_trace_gets_inspect() {
        let mut state = 1u64;
        let values: Vec<f64> = (0..2048)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
            })
            .collect();
        let s = RegularSeries::new(Seconds::ZERO, Seconds(1.0), values);
        let r = recommend(&s, RecommendConfig::default());
        assert_eq!(r.action, Action::Inspect);
        assert!(r.estimated_nyquist.is_none());
    }

    #[test]
    fn borderline_saving_respects_change_threshold() {
        // Nyquist target ≈ current/1.3: below the 2x threshold ⇒ keep;
        // with threshold 1.2 ⇒ reduce.
        let s = tone_series(2000, 1.0, 0.3);
        let keep = recommend(&s, RecommendConfig::default());
        assert_eq!(keep.action, Action::Keep);
        let eager = recommend(
            &s,
            RecommendConfig {
                min_change_factor: 1.2,
                ..RecommendConfig::default()
            },
        );
        assert!(matches!(eager.action, Action::Reduce { .. }));
    }

    #[test]
    fn headroom_scales_the_target() {
        let s = tone_series(4000, 1.0, 0.001);
        let tight = recommend(&s, RecommendConfig::default());
        let wide = recommend(
            &s,
            RecommendConfig {
                headroom: 3.0,
                ..RecommendConfig::default()
            },
        );
        let (t, w) = match (tight.action, wide.action) {
            (Action::Reduce { to: t, .. }, Action::Reduce { to: w, .. }) => (t, w),
            other => panic!("{other:?}"),
        };
        assert!((w.value() / t.value() - 3.0 / 1.25).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "headroom")]
    fn sub_unity_headroom_panics() {
        let s = tone_series(100, 1.0, 0.1);
        recommend(
            &s,
            RecommendConfig {
                headroom: 0.5,
                ..RecommendConfig::default()
            },
        );
    }
}
