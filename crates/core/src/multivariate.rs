//! Multivariate signals (§6, "Multivariate signals").
//!
//! The paper: *"As long as we sample each individual signal at a rate higher
//! than its Nyquist rate, we can recover the original signal and preserve any
//! correlations."* This module provides (a) a joint estimate over a signal
//! group — the max of the per-signal estimates, the rate at which sampling
//! every member preserves the ensemble — and (b) an experimental check that
//! per-signal Nyquist resampling indeed preserves cross-correlations.

use crate::estimator::{NyquistEstimate, NyquistEstimator};
use sweetspot_dsp::fft::FftPlanner;
use sweetspot_dsp::stats::pearson;
use sweetspot_timeseries::{Hertz, RegularSeries};

/// Joint estimate over a group of signals.
#[derive(Debug, Clone, PartialEq)]
pub struct MultivariateEstimate {
    /// Per-signal §3.2 estimates, in input order.
    pub per_signal: Vec<NyquistEstimate>,
    /// The group rate: the maximum per-signal rate, or `Aliased` if any
    /// member was aliased (the group cannot be jointly recovered).
    pub joint: NyquistEstimate,
}

/// Estimates each signal and the joint (max) rate.
///
/// # Panics
/// Panics if `signals` is empty.
pub fn estimate_joint(
    estimator: &mut NyquistEstimator,
    signals: &[RegularSeries],
) -> MultivariateEstimate {
    assert!(!signals.is_empty(), "need at least one signal");
    let per_signal: Vec<NyquistEstimate> =
        signals.iter().map(|s| estimator.estimate_series(s)).collect();
    let joint = per_signal.iter().try_fold(Hertz(0.0), |acc, e| match e {
        NyquistEstimate::Aliased => None,
        NyquistEstimate::Rate(r) => Some(Hertz(acc.value().max(r.value()))),
    });
    MultivariateEstimate {
        per_signal,
        joint: joint.map_or(NyquistEstimate::Aliased, NyquistEstimate::Rate),
    }
}

/// Correlation preservation report for a pair of co-sampled signals.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorrelationReport {
    /// Pearson correlation of the original pair.
    pub original: f64,
    /// Pearson correlation after each signal is downsampled to `rate` and
    /// reconstructed.
    pub reconstructed: f64,
    /// `|original − reconstructed|`.
    pub delta: f64,
}

/// Downsamples both signals to `rate` with *ideal* (anti-aliased Fourier)
/// resampling, reconstructs them, and compares the cross-correlation before
/// and after — the §6 experiment.
///
/// Ideal resampling is the right model here: the question is what
/// information *survives* a storage rate of `rate`, not what a filterless
/// poller records. (Filterless decimation folds shared components
/// identically in both signals, which can preserve correlations by accident
/// even when the signals themselves are unrecoverable — see
/// [`crate::reconstruct`] for the poller model.)
///
/// # Panics
/// Panics if the signals differ in length or rate.
pub fn correlation_preservation(
    planner: &mut FftPlanner,
    a: &RegularSeries,
    b: &RegularSeries,
    rate: Hertz,
) -> CorrelationReport {
    assert_eq!(a.len(), b.len(), "signals must be co-sampled");
    assert!(
        (a.sample_rate().value() - b.sample_rate().value()).abs() < 1e-12,
        "signals must share a sample rate"
    );
    let original = pearson(a.values(), b.values());
    let n = a.len();
    let m = ((n as f64 * rate.value() / a.sample_rate().value()).round() as usize)
        .clamp(1, n);
    // Both signals stream through the same pair of resampling buffers.
    let mut down = Vec::new();
    let mut ra = Vec::new();
    let mut rb = Vec::new();
    let mut ideal_roundtrip = |s: &RegularSeries, out: &mut Vec<f64>| {
        sweetspot_dsp::resample::resample_fft_into(planner, s.values(), m, &mut down);
        sweetspot_dsp::resample::resample_fft_into(planner, &down, n, out);
    };
    ideal_roundtrip(a, &mut ra);
    ideal_roundtrip(b, &mut rb);
    let reconstructed = pearson(&ra, &rb);
    CorrelationReport {
        original,
        reconstructed,
        delta: (original - reconstructed).abs(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::NyquistConfig;
    use std::f64::consts::PI;
    use sweetspot_timeseries::Seconds;

    fn tone_series(n: usize, tones: &[(f64, f64, f64)]) -> RegularSeries {
        let values: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64;
                tones
                    .iter()
                    .map(|&(f, a, phase)| a * (2.0 * PI * f * t + phase).sin())
                    .sum()
            })
            .collect();
        RegularSeries::new(Seconds::ZERO, Seconds(1.0), values)
    }

    #[test]
    fn joint_is_max_of_members() {
        let mut est = NyquistEstimator::new(NyquistConfig::default());
        let slow = tone_series(2000, &[(0.005, 1.0, 0.0)]);
        let fast = tone_series(2000, &[(0.05, 1.0, 0.0)]);
        let m = estimate_joint(&mut est, &[slow, fast]);
        let joint = m.joint.rate().unwrap().value();
        let fast_rate = m.per_signal[1].rate().unwrap().value();
        assert!((joint - fast_rate).abs() < 1e-12);
        assert!(joint > m.per_signal[0].rate().unwrap().value());
    }

    #[test]
    fn any_aliased_member_aliases_the_joint() {
        let mut est = NyquistEstimator::new(NyquistConfig::default());
        let clean = tone_series(2048, &[(0.01, 1.0, 0.0)]);
        // White-ish noise member: aliased.
        let mut state = 7u64;
        let noisy: Vec<f64> = (0..2048)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
            })
            .collect();
        let noisy = RegularSeries::new(Seconds::ZERO, Seconds(1.0), noisy);
        let m = estimate_joint(&mut est, &[clean, noisy]);
        assert!(m.joint.is_aliased());
        assert!(!m.per_signal[0].is_aliased());
        assert!(m.per_signal[1].is_aliased());
    }

    #[test]
    fn correlation_preserved_above_nyquist() {
        let mut planner = FftPlanner::new();
        // Two strongly correlated band-limited signals (shared tone, one
        // has an extra small component).
        let a = tone_series(4096, &[(0.01, 1.0, 0.3)]);
        let b = tone_series(4096, &[(0.01, 0.9, 0.3), (0.004, 0.2, 0.3)]);
        let report = correlation_preservation(&mut planner, &a, &b, Hertz(0.05));
        assert!(report.original > 0.9, "setup: corr {}", report.original);
        assert!(
            report.delta < 0.02,
            "correlation must survive Nyquist resampling: {report:?}"
        );
    }

    #[test]
    fn correlation_degrades_below_nyquist() {
        let mut planner = FftPlanner::new();
        // The pair's correlation lives in a shared 0.05 Hz tone; each signal
        // also has its own small idiosyncratic low tone.
        let a = tone_series(4096, &[(0.05, 1.0, 0.0), (0.003, 0.25, 0.5)]);
        let c = tone_series(4096, &[(0.05, 1.0, 0.0), (0.0017, 0.25, 2.0)]);
        let above = correlation_preservation(&mut planner, &a, &c, Hertz(0.13));
        assert!(above.original > 0.9, "setup: corr {}", above.original);
        assert!(above.delta < 0.02, "above Nyquist: {above:?}");
        // Resampling at 0.013 Hz (fold 0.0065) destroys the shared tone, so
        // only the uncorrelated idiosyncratic parts survive.
        let below = correlation_preservation(&mut planner, &a, &c, Hertz(0.013));
        assert!(
            below.delta > 0.5,
            "undersampling should destroy the shared component: {below:?}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_group_panics() {
        let mut est = NyquistEstimator::new(NyquistConfig::default());
        estimate_joint(&mut est, &[]);
    }
}
