//! Downsample-then-reconstruct (§4.3, Figure 6).
//!
//! The paper's demonstration: take an actual (quantized) temperature trace,
//! downsample it to its Nyquist rate, re-synthesize the full-rate signal
//! through a low-pass filter ("taking an FFT of the sampled signal, setting
//! all frequency components above f₀ to 0 and then taking the IFFT"), re-apply
//! the sensor's quantizer — and the L2 distance to the original is 0.
//!
//! The pipeline here makes each step explicit so experiments can vary the
//! target rate, the reconstruction filter, and the re-quantization step.

use sweetspot_dsp::fft::FftPlanner;
use sweetspot_dsp::quantize::Quantizer;
use sweetspot_dsp::resample::{decimate, resample_fft};
use sweetspot_dsp::stats;
use sweetspot_timeseries::{Hertz, RegularSeries};

/// Reconstruction settings.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReconstructionConfig {
    /// Re-apply this quantization step to the reconstructed signal (§4.3:
    /// "we can add the same quantization in order to recover the signal more
    /// accurately"). `None` leaves the low-pass output as-is.
    pub requantize: Option<f64>,
}

/// Error metrics between an original trace and its reconstruction.
///
/// Fourier interpolation assumes the trace is periodic in its window, so a
/// non-periodic trace rings near its two ends (Gibbs). The `interior_*`
/// metrics exclude a 10% margin at each end; they are the fair measure of
/// reconstruction fidelity (the paper's Figure 6 signal is long enough that
/// edge effects vanish in the plot).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReconstructionReport {
    /// Euclidean distance (Figure 6's headline metric).
    pub l2: f64,
    /// Root-mean-square error.
    pub rmse: f64,
    /// RMSE normalized by the original's value range.
    pub nrmse: f64,
    /// Largest pointwise deviation.
    pub max_abs: f64,
    /// NRMSE over the central 80% of the trace (edge ringing excluded).
    pub interior_nrmse: f64,
    /// L2 distance over the central 80% of the trace.
    pub interior_l2: f64,
    /// Decimation factor that was applied (1 = no reduction possible).
    pub factor: usize,
}

/// The integer decimation factor that downsamples `original_rate` as close
/// to `target_rate` as possible without going below it (so the kept samples
/// still satisfy the Nyquist criterion).
///
/// # Panics
/// Panics if either rate is not positive.
pub fn decimation_factor(original_rate: Hertz, target_rate: Hertz) -> usize {
    assert!(original_rate.value() > 0.0, "original rate must be positive");
    assert!(target_rate.value() > 0.0, "target rate must be positive");
    ((original_rate.value() / target_rate.value()).floor() as usize).max(1)
}

/// Downsamples `series` by keeping every `factor`-th sample — what a poller
/// running `factor×` slower would have recorded.
pub fn downsample(series: &RegularSeries, factor: usize) -> RegularSeries {
    let values = decimate(series.values(), factor);
    RegularSeries::new(
        series.start(),
        series.interval() * factor as f64,
        values,
    )
}

/// Reconstructs a full-rate signal from a downsampled one via ideal
/// (Fourier) low-pass interpolation back to `target_len` samples, optionally
/// re-quantizing.
///
/// Fourier interpolation implicitly treats the trace as periodic; to avoid
/// Gibbs ringing from the wraparound discontinuity, the line through the
/// first and last samples is subtracted before interpolation and re-added
/// (evaluated on the fine grid) afterwards — standard endpoint bridging.
pub fn reconstruct(
    planner: &mut FftPlanner,
    downsampled: &RegularSeries,
    target_len: usize,
    cfg: ReconstructionConfig,
) -> RegularSeries {
    assert!(target_len >= downsampled.len(), "cannot reconstruct to fewer samples");
    let vals = downsampled.values();
    let n = vals.len();
    let first = vals[0];
    let slope = if n > 1 {
        (vals[n - 1] - first) / (n - 1) as f64
    } else {
        0.0
    };
    let residual: Vec<f64> = vals
        .iter()
        .enumerate()
        .map(|(k, &v)| v - (first + slope * k as f64))
        .collect();
    let mut values = resample_fft(planner, &residual, target_len);
    let stretch = n as f64 / target_len as f64;
    for (j, v) in values.iter_mut().enumerate() {
        *v += first + slope * (j as f64 * stretch);
    }
    if let Some(step) = cfg.requantize {
        Quantizer::new(step).apply(&mut values);
    }
    let new_interval = downsampled.interval() * (downsampled.len() as f64 / target_len as f64);
    RegularSeries::new(downsampled.start(), new_interval, values)
}

/// The full Figure 6 pipeline: decimate `original` down to (at least)
/// `nyquist_rate`, reconstruct back to the original rate, and measure the
/// error.
///
/// The original is first trimmed to an exact multiple of the decimation
/// factor so the reconstruction grid aligns sample-for-sample with the
/// original grid (otherwise the time bases differ by up to one coarse
/// interval and the comparison measures a spurious stretch, not
/// reconstruction quality). At most `factor − 1` trailing samples are
/// dropped.
///
/// Returns the reconstruction (of the trimmed length) and its error report.
pub fn roundtrip(
    planner: &mut FftPlanner,
    original: &RegularSeries,
    nyquist_rate: Hertz,
    cfg: ReconstructionConfig,
) -> (RegularSeries, ReconstructionReport) {
    let factor = decimation_factor(original.sample_rate(), nyquist_rate);
    let trimmed_len = (original.len() / factor) * factor;
    let original = original.slice(0..trimmed_len);
    let original = &original;
    let down = downsample(original, factor);
    let recon = reconstruct(planner, &down, original.len(), cfg);
    let n = original.len();
    let margin = n / 10;
    let interior = margin..n - margin;
    let (io, ir) = (
        &original.values()[interior.clone()],
        &recon.values()[interior],
    );
    let report = ReconstructionReport {
        l2: stats::l2_distance(original.values(), recon.values()),
        rmse: stats::rmse(original.values(), recon.values()),
        nrmse: stats::nrmse(original.values(), recon.values()),
        max_abs: stats::max_abs_error(original.values(), recon.values()),
        interior_nrmse: stats::nrmse(io, ir),
        interior_l2: stats::l2_distance(io, ir),
        factor,
    };
    (recon, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;
    use sweetspot_timeseries::Seconds;

    fn band_series(n: usize, fs: f64, edge: f64, mean: f64) -> RegularSeries {
        let values: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 / fs;
                mean + (2.0 * PI * edge * 0.2 * t).sin() + 0.5 * (2.0 * PI * edge * t).sin()
            })
            .collect();
        RegularSeries::new(Seconds::ZERO, Seconds(1.0 / fs), values)
    }

    #[test]
    fn factor_computation() {
        assert_eq!(decimation_factor(Hertz(1.0), Hertz(0.1)), 10);
        assert_eq!(decimation_factor(Hertz(1.0), Hertz(0.15)), 6);
        assert_eq!(decimation_factor(Hertz(1.0), Hertz(2.0)), 1);
    }

    #[test]
    fn downsample_keeps_grid() {
        let s = band_series(100, 1.0, 0.05, 0.0);
        let d = downsample(&s, 4);
        assert_eq!(d.len(), 25);
        assert_eq!(d.interval(), Seconds(4.0));
        assert_eq!(d.values()[1], s.values()[4]);
    }

    #[test]
    fn bandlimited_roundtrip_is_near_lossless() {
        let mut planner = FftPlanner::new();
        // Edge at 0.01 Hz, sampled at 1 Hz, downsampled to 0.04 Hz (factor 25).
        let s = band_series(4096, 1.0, 0.01, 10.0);
        let (recon, report) = roundtrip(
            &mut planner,
            &s,
            Hertz(0.04),
            ReconstructionConfig::default(),
        );
        assert_eq!(recon.len(), (s.len() / 25) * 25);
        assert_eq!(report.factor, 25);
        assert!(
            report.nrmse < 0.05,
            "full-trace NRMSE {} too high",
            report.nrmse
        );
        assert!(
            report.interior_nrmse < 0.01,
            "interior NRMSE {} should only see edge-free reconstruction",
            report.interior_nrmse
        );
    }

    #[test]
    fn requantization_recovers_quantized_signal_exactly() {
        // The §4.3 claim, stated honestly: re-quantizing the reconstruction
        // recovers the stored reading *exactly* wherever the low-pass error
        // is below half a quantum; the residual mismatches are lone
        // single-quantum boundary flips. (The paper's Figure 6 shows L2 = 0
        // on one smooth temperature trace — the zero-quant-noise ideal; with
        // explicit round() quantization the boundary samples keep a small
        // exact-recovery gap. The fleet-level Fig 6 experiment reports both.)
        //
        // Slow staircase regime: 8-quanta amplitude over one cycle per 4096
        // samples ⇒ quantization steps last ≈80 samples ≫ the factor-8
        // coarse interval, so the staircase itself is well-sampled.
        let mut planner = FftPlanner::new();
        let n = 4096;
        let f1 = 1.0 / n as f64;
        let values: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64;
                (50.0 + 8.0 * (2.0 * PI * f1 * t).sin()).round()
            })
            .collect();
        let s = RegularSeries::new(Seconds::ZERO, Seconds(1.0), values);
        let target = Hertz(1.0 / 8.0 + 1e-12);
        let (recon_q, report_q) = roundtrip(
            &mut planner,
            &s,
            target,
            ReconstructionConfig { requantize: Some(1.0) },
        );
        let (recon_raw, _) = roundtrip(&mut planner, &s, target, ReconstructionConfig::default());

        // (a) Mismatches are single-quantum flips at most.
        assert!(
            report_q.max_abs <= 1.0 + 1e-9,
            "mismatches must be single-quantum flips: {report_q:?}"
        );
        // (b) The vast majority of interior readings are recovered exactly.
        let nn = recon_q.len(); // roundtrip trims to a factor multiple
        let margin = nn / 10;
        let exact = s.values()[margin..nn - margin]
            .iter()
            .zip(&recon_q.values()[margin..nn - margin])
            .filter(|(a, b)| (*a - *b).abs() < 1e-9)
            .count();
        let exact_frac = exact as f64 / (nn - 2 * margin) as f64;
        assert!(
            exact_frac > 0.95,
            "only {exact_frac:.3} of interior samples recovered exactly: {report_q:?}"
        );
        // (c) Wherever the raw low-pass error is under half a quantum,
        // re-quantization recovers the reading exactly — the mechanism
        // behind the paper's L2 = 0.
        for ((&orig, &raw), &q) in s.values()[..nn]
            .iter()
            .zip(recon_raw.values())
            .zip(recon_q.values())
        {
            if (raw - orig).abs() < 0.5 - 1e-9 {
                assert_eq!(q, orig, "sub-half-quantum error must snap exactly");
            }
        }
    }

    #[test]
    fn undersampled_roundtrip_shows_loss() {
        let mut planner = FftPlanner::new();
        let s = band_series(4096, 1.0, 0.1, 0.0);
        // Decimate to 0.05 Hz: far below the 0.2 Hz Nyquist rate.
        let (_, report) = roundtrip(
            &mut planner,
            &s,
            Hertz(0.05),
            ReconstructionConfig::default(),
        );
        assert!(
            report.nrmse > 0.1,
            "aliased roundtrip should lose information: {report:?}"
        );
    }

    #[test]
    fn factor_one_roundtrip_is_exact() {
        let mut planner = FftPlanner::new();
        let s = band_series(512, 1.0, 0.05, 1.0);
        let (recon, report) = roundtrip(
            &mut planner,
            &s,
            Hertz(2.0), // above the sampling rate → factor 1
            ReconstructionConfig::default(),
        );
        assert_eq!(report.factor, 1);
        assert!(report.l2 < 1e-9);
        assert_eq!(recon.len(), s.len());
    }

    #[test]
    fn reconstruct_validates_target_len() {
        let mut planner = FftPlanner::new();
        let s = band_series(64, 1.0, 0.05, 0.0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            reconstruct(&mut planner, &s, 32, ReconstructionConfig::default())
        }));
        assert!(result.is_err());
    }
}
