//! The §4.2 dynamic sampling controller.
//!
//! State machine, following the paper's strawman:
//!
//! * **Probe mode** — "Initially, we do not know the Nyquist rate of the
//!   underlying signal and so we must probe, i.e., multiplicatively increase
//!   the measurement rate along with the method in Section 4.1 … While
//!   aliasing persists, we remain in probe mode."
//! * **Steady mode** — "Once we no longer detect aliasing, we use the method
//!   in Section 3.2 which will successfully identify the Nyquist rate of the
//!   signal." The controller then samples at `headroom × estimate` and keeps
//!   verifying with the dual-rate check.
//! * **Adaptive decrease** — "we can optimize the system by also adaptively
//!   decreasing the sampling rate if we observe the Nyquist rate returning
//!   to a lower value" — applied after `decrease_patience` consecutive
//!   epochs of substantially lower estimates (hysteresis).
//! * **Memory** — "We can even 'remember' previous maximum Nyquist rates to
//!   ramp up more quickly in the future": on re-entering probe mode the
//!   controller jumps straight to the remembered maximum.
//!
//! ### Budget grants
//!
//! A fleet-level scheduler (see `analysis::fleetsim`) may not be able to
//! afford the rate a controller asks for. [`AdaptiveSampler::step_granted`]
//! runs one epoch at an externally *granted* rate over an externally fixed
//! window (fleet epochs are lockstep — every device shares the scheduling
//! quantum). When the grant is below the request the epoch is **throttled**:
//!
//! * the controller records the deferral ([`AdaptiveSampler::deferred_epochs`],
//!   [`AdaptiveSampler::deferred_samples`]);
//! * an **aliased** throttled epoch can only *raise* the next request
//!   (re-ramping through the §4.2 memory), never lower it — the cut is the
//!   evidence, not falling demand;
//! * a throttled epoch the §4.1 dual-rate detector *verified clean* is
//!   trusted like any other: the detector's whole job is to certify that
//!   the current (here: granted) rate suffices, so the request adapts down
//!   to `headroom × estimate` with the usual hysteresis — this is how a
//!   budget-bound fleet sheds demand it never actually needed;
//! * grants are clamped into `[min_rate, max_rate]`, and streams too short
//!   for the §4.1 detector (fewer than 16 samples in the window) skip
//!   verification rather than panic — the companion stream is then not
//!   acquired (the epoch is not billed for it), and because nothing was
//!   verified the request is **held**, not lowered: a folded spectrum can
//!   look deceptively clean, and only the detector can tell;
//! * likewise, a window with fewer than 64 primary samples is too short for
//!   the §3.2 estimator to be meaningful (its flat-spectrum guard would cry
//!   "aliased" on every noisy short window and ratchet the fleet to its
//!   rate ceiling) — such epochs are **evidence-free**: the controller
//!   samples at the granted rate, bills the cost, and holds its state. A
//!   device that settles to a rate slower than the lockstep window can
//!   resolve simply stops re-estimating until budget or demand move it.
//!
//! ### Headroom floor
//!
//! Steady-state verification samples a companion stream at `rate/φ`
//! (φ ≈ 1.618, guaranteeing the non-integer ratio of §4.1). The companion's
//! band check covers `rate/(2φ)`, so continuous verification is only stable
//! when `rate ≥ 2φ·band_edge` — an effective headroom of ≈1.62× the Nyquist
//! rate. [`AdaptiveSampler::new`] therefore clamps `headroom` up to
//! [`MIN_VERIFY_HEADROOM`]; this is itself a finding about the *real* cost
//! of the paper's always-on detector.
//!
//! ### Batched verification
//!
//! Continuous verification costs `1/φ ≈ 62%` extra samples forever.
//! [`AdaptiveConfig::verify_every`]` = k` amortizes it: a *settled*
//! controller acquires the companion stream only every k-th epoch; the
//! skipped epochs poll just the primary. The skipped epochs are handled
//! conservatively — they can **raise** the request (following a rising
//! estimate is safe; the raise is then verified on the pulled-forward next
//! epoch) but never lower it, and an estimator "aliased" verdict on a
//! skipped epoch holds the rate and forces verification next epoch instead
//! of probing (the §4.1 detector, not the flat-spectrum guard, is the
//! arbiter of aliasing). Probe-mode epochs always verify. `k = 1` is
//! bit-identical to the classic controller.

use crate::aliasing::{companion_rate, detect_aliasing_scratch, DetectScratch, DualRateConfig};
use crate::estimator::{EstimatorScratch, NyquistConfig, NyquistEstimate, NyquistEstimator};
use crate::source::SignalSource;
use sweetspot_timeseries::{Hertz, Seconds};

/// Minimum steady-state headroom compatible with continuous dual-rate
/// verification (see module docs).
pub const MIN_VERIFY_HEADROOM: f64 = 1.65;

/// Minimum samples per epoch window for the detector/estimator to be
/// meaningful; shorter windows are auto-extended.
const MIN_EPOCH_SAMPLES: usize = 64;

/// Minimum samples per stream for the §4.1 dual-rate detector (its hard
/// precondition). Lockstep epochs below this skip verification.
const MIN_DETECT_SAMPLES: usize = 16;

/// Consecutive settled epochs without an aliasing alarm below the
/// remembered maximum before the controller is classified
/// [`HealthState::SuspectDeadlocked`]. "Without an alarm" covers both a
/// verified-clean §4.1 verdict *and* an epoch too slow to verify at all
/// (fewer than [`MIN_EPOCH_SAMPLES`] samples in the window): a controller
/// that cannot even check itself is silent, not healthy. Small by design
/// (the KISS principle: the signal must stay cheap) — a fleet watchdog
/// rate-limits what it does about the suspicion, not the suspicion itself.
pub const SUSPECT_QUIET_EPOCHS: usize = 3;

/// Controller mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Multiplicatively increasing the rate until aliasing clears.
    Probe,
    /// Tracking `headroom × estimated Nyquist`.
    Steady,
}

/// Coarse per-member health, derived entirely from state the controller
/// already keeps — no extra sampling, no extra estimator runs (the KISS
/// health-signal principle: cheap enough to read for every member every
/// epoch).
///
/// The interesting state is [`HealthState::SuspectDeadlocked`]: a settled
/// controller whose request sits *below* its remembered maximum after
/// [`SUSPECT_QUIET_EPOCHS`] consecutive epochs without an aliasing alarm —
/// verified clean, or too slow to verify at all. That is exactly the
/// signature of the post-incident aliasing deadlock — folded tones landed
/// in-band (in the terminal form, a flat folded spectrum floors the
/// estimate so low the detector can never run again), the §4.1 machinery
/// raises no alarm forever, and the device under-samples until something
/// external re-probes it. Suspicion is
/// deliberately over-inclusive (any device that settled back down after a
/// regime revert matches); a fleet watchdog disambiguates by *scheduling a
/// bounded re-probe*, which either re-settles at the same rate (suspicion
/// retired cheaply) or recovers the lost band.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthState {
    /// Settled, verified, nothing to explain.
    Healthy,
    /// Probing / re-ramping, or reports currently missing — the controller
    /// is already doing the right thing; a watchdog should wait.
    Recovering,
    /// Settled below the remembered maximum with a clean verification
    /// streak: possibly aliasing-deadlocked (see type docs).
    SuspectDeadlocked,
    /// The device's last epoch was a scheduled sleep (duty cycle / battery
    /// conservation), not a failure.
    Dormant,
}

/// Controller configuration.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveConfig {
    /// Rate used for the very first epoch.
    pub initial_rate: Hertz,
    /// Lowest rate the controller will settle to.
    pub min_rate: Hertz,
    /// Polling ceiling (physical/SNMP limits).
    pub max_rate: Hertz,
    /// Steady-state rate = `headroom × estimated Nyquist rate`. Clamped up
    /// to [`MIN_VERIFY_HEADROOM`].
    pub headroom: f64,
    /// Rate multiplier while probing (paper: multiplicative increase).
    pub probe_multiplier: f64,
    /// Consecutive low-estimate epochs required before decreasing.
    pub decrease_patience: usize,
    /// A new target must be below `decrease_threshold × current` to count
    /// toward the patience counter (hysteresis).
    pub decrease_threshold: f64,
    /// Remember past maxima and re-ramp to them directly.
    pub memory: bool,
    /// Batched verification cadence: once settled (Steady mode), run the
    /// §4.1 companion stream only every `verify_every`-th epoch instead of
    /// every epoch. `1` (the default) is continuous verification — exactly
    /// the classic behavior. Probe-mode epochs always verify (the verdict
    /// *is* the probe's exit condition), and any anomaly on a skipped epoch
    /// pulls the next verification forward (see the module docs). `0` is
    /// treated as `1`.
    pub verify_every: usize,
    /// Nominal epoch window (auto-extended at very low rates so the window
    /// holds at least 64 samples).
    pub epoch: Seconds,
    /// Estimator settings (§3.2).
    pub estimator: NyquistConfig,
    /// Detector settings (§4.1).
    pub detector: DualRateConfig,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            initial_rate: Hertz(1.0),
            min_rate: Hertz(1e-6),
            max_rate: Hertz(100.0),
            headroom: MIN_VERIFY_HEADROOM,
            probe_multiplier: 2.0,
            decrease_patience: 3,
            decrease_threshold: 0.7,
            memory: true,
            verify_every: 1,
            epoch: Seconds(600.0),
            estimator: NyquistConfig::default(),
            detector: DualRateConfig::default(),
        }
    }
}

/// How the controller moved its request at the end of an epoch — the §4.2
/// state machine's transition, made observable so a fleet can count them
/// without re-deriving the decision tree from raw rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpochAction {
    /// Aliasing escalated the request up the multiplicative probe ladder.
    Probe,
    /// Aliasing re-ramped the request straight to `headroom ×` the
    /// remembered §4.2 maximum (the memory jump beat the ladder step).
    Reramp,
    /// A probe-mode epoch found its rate and settled to the target.
    Settle,
    /// The steady-state target rose above the primary rate and the request
    /// followed it up.
    Raise,
    /// A hysteresis-approved decrease to the target.
    Cut,
    /// The request held: steady and on target, decrease patience still
    /// counting, an unverifiable or cadence-skipped epoch, or a window too
    /// short to yield evidence.
    Hold,
    /// No adaptation ran at all — the epoch's report was missed or arrived
    /// too late to act on.
    Defer,
}

/// What happened in one adaptation epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochReport {
    /// Epoch number (0-based).
    pub index: usize,
    /// Window start time.
    pub start: Seconds,
    /// Window duration actually used (≥ configured epoch).
    pub duration: Seconds,
    /// Mode during this epoch.
    pub mode: Mode,
    /// Rate the controller *asked* for (equals `primary_rate` unless a
    /// scheduler throttled the epoch).
    pub requested_rate: Hertz,
    /// `true` when the granted rate was below the requested rate.
    pub throttled: bool,
    /// Primary sampling rate used.
    pub primary_rate: Hertz,
    /// Companion (verification) rate used.
    pub secondary_rate: Hertz,
    /// Dual-rate detector verdict for this window.
    pub aliased: bool,
    /// §3.2 estimate from the primary window (None when the estimator itself
    /// says "aliased").
    pub estimate: Option<Hertz>,
    /// Total samples acquired this epoch (primary + companion streams).
    pub samples_taken: usize,
    /// Rate chosen for the next epoch.
    pub next_rate: Hertz,
    /// `true` when the §4.1 dual-rate detector actually ran this epoch
    /// (both streams acquired with enough samples).
    pub verified: bool,
    /// The state-machine transition this epoch performed.
    pub action: EpochAction,
}

/// The controller's transient working set for one epoch: detector scratch,
/// estimator scratch, and the recycled value buffers for the primary and
/// companion streams.
///
/// Every [`AdaptiveSampler`] owns one for the classic
/// [`step`](AdaptiveSampler::step)/[`step_granted`](AdaptiveSampler::step_granted)
/// API; the fleet engine instead lends one *per worker* through
/// [`AdaptiveSampler::step_granted_scratch`], so 10⁵ member controllers
/// share a handful of warmed-up working sets and keep only durable control
/// state (rates, hysteresis, deferral counters, remembered max) per member.
/// Scratch contents never influence results — every buffer is cleared or
/// overwritten before use.
#[derive(Debug, Default)]
pub struct SamplerScratch {
    /// §4.1 detector working storage.
    detect: DetectScratch,
    /// §3.2 estimator working storage.
    estimator: EstimatorScratch,
    /// Recycled value buffers for the primary/companion streams: each epoch
    /// hands them to the source via `sample_recycled` and reclaims them from
    /// the returned series, so a source with a zero-allocation path (e.g.
    /// `monitor::ScratchSource`) makes the whole epoch allocation-free.
    fast_spare: Vec<f64>,
    slow_spare: Vec<f64>,
}

impl SamplerScratch {
    /// Empty scratch; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }

    /// Heap bytes the scratch currently holds (capacities, not lengths).
    pub fn resident_bytes(&self) -> usize {
        self.detect.resident_bytes()
            + self.estimator.resident_bytes()
            + (self.fast_spare.capacity() + self.slow_spare.capacity())
                * std::mem::size_of::<f64>()
    }
}

/// The dynamic sampler.
pub struct AdaptiveSampler {
    config: AdaptiveConfig,
    estimator: NyquistEstimator,
    mode: Mode,
    rate: Hertz,
    remembered_max: Option<Hertz>,
    low_streak: usize,
    epoch_index: usize,
    deferred_epochs: usize,
    deferred_samples: usize,
    /// Settled epochs since the §4.1 companion last ran (batched
    /// verification; stays 0 under the default continuous cadence).
    since_verify: usize,
    /// Consecutive epochs whose report never reached the controller at all
    /// (see [`AdaptiveSampler::note_missed_epoch`]): drives hold-and-decay
    /// on absent evidence. Any arriving report resets it.
    missed_streak: usize,
    /// Lifetime count of wholly missed epochs (never reset — per-device
    /// observability for the fleet's `--json-devices` records).
    missed_epochs: usize,
    /// Consecutive settled epochs the §4.1 detector verified clean (reset by
    /// aliasing, probing, a missed epoch, dormancy, or reboot). Feeds the
    /// [`HealthState::SuspectDeadlocked`] classification; never consulted by
    /// the adaptation decision tree.
    quiet_streak: usize,
    /// The last epoch was a scheduled sleep ([`Self::note_dormant_epoch`]);
    /// cleared by any real step, miss, or reboot.
    dormant: bool,
    /// Lifetime count of dormant (scheduled-sleep) epochs, never reset.
    dormant_epochs: usize,
    /// Lifetime count of watchdog-forced re-probes ([`Self::begin_reprobe`]),
    /// never reset.
    reprobes: usize,
    /// Working storage for the owned-scratch API; stays empty when every
    /// epoch runs through [`AdaptiveSampler::step_granted_scratch`].
    scratch: SamplerScratch,
}

impl AdaptiveSampler {
    /// Creates a controller.
    ///
    /// # Panics
    /// Panics on inconsistent configuration (non-positive rates,
    /// `min > max`, `probe_multiplier <= 1`, non-positive epoch).
    pub fn new(config: AdaptiveConfig) -> Self {
        Self::with_planner(config, sweetspot_dsp::fft::FftPlanner::new())
    }

    /// [`AdaptiveSampler::new`] with a caller-supplied FFT planner — pass a
    /// clone of a shared planner so a fleet of controllers holds every plan
    /// table once (see [`NyquistEstimator::with_planner`]). Tables never
    /// influence results.
    ///
    /// # Panics
    /// Exactly as [`AdaptiveSampler::new`].
    pub fn with_planner(mut config: AdaptiveConfig, planner: sweetspot_dsp::fft::FftPlanner) -> Self {
        assert!(config.initial_rate.value() > 0.0, "initial_rate must be positive");
        assert!(config.min_rate.value() > 0.0, "min_rate must be positive");
        assert!(
            config.min_rate.value() <= config.max_rate.value(),
            "min_rate must not exceed max_rate"
        );
        assert!(config.probe_multiplier > 1.0, "probe_multiplier must exceed 1");
        assert!(config.epoch.value() > 0.0, "epoch must be positive");
        assert!(
            (0.0..1.0).contains(&config.decrease_threshold),
            "decrease_threshold must be in (0,1)"
        );
        config.headroom = config.headroom.max(MIN_VERIFY_HEADROOM);
        let rate = Hertz(
            config
                .initial_rate
                .value()
                .clamp(config.min_rate.value(), config.max_rate.value()),
        );
        AdaptiveSampler {
            estimator: NyquistEstimator::with_planner(config.estimator, planner),
            config,
            mode: Mode::Probe,
            rate,
            remembered_max: None,
            low_streak: 0,
            epoch_index: 0,
            deferred_epochs: 0,
            deferred_samples: 0,
            since_verify: 0,
            missed_streak: 0,
            missed_epochs: 0,
            quiet_streak: 0,
            dormant: false,
            dormant_epochs: 0,
            reprobes: 0,
            scratch: SamplerScratch::new(),
        }
    }

    /// Current mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Rate the next epoch will use — equivalently, the rate the controller
    /// *requests* from a fleet scheduler for its next epoch.
    pub fn current_rate(&self) -> Hertz {
        self.rate
    }

    /// Alias of [`AdaptiveSampler::current_rate`] with scheduler vocabulary:
    /// the rate this controller asks the shared budget for.
    pub fn requested_rate(&self) -> Hertz {
        self.rate
    }

    /// Highest Nyquist estimate seen so far (the §4.2 "memory").
    pub fn remembered_max(&self) -> Option<Hertz> {
        self.remembered_max
    }

    /// Number of epochs whose grant was below the requested rate.
    pub fn deferred_epochs(&self) -> usize {
        self.deferred_epochs
    }

    /// Total primary samples the scheduler's cuts cost so far (requested
    /// minus granted, summed over throttled epochs; a wholly missed epoch
    /// contributes its entire requested stream).
    pub fn deferred_samples(&self) -> usize {
        self.deferred_samples
    }

    /// Consecutive epochs with no report at all (reset by any epoch whose
    /// report arrives, even late).
    pub fn missed_streak(&self) -> usize {
        self.missed_streak
    }

    /// Lifetime count of wholly missed epochs (unlike
    /// [`missed_streak`](Self::missed_streak), never reset).
    pub fn missed_epochs(&self) -> usize {
        self.missed_epochs
    }

    /// Consecutive settled epochs the §4.1 detector verified clean (see the
    /// [`HealthState`] docs for what the streak feeds).
    pub fn quiet_streak(&self) -> usize {
        self.quiet_streak
    }

    /// Lifetime count of dormant (scheduled-sleep) epochs, never reset.
    pub fn dormant_epochs(&self) -> usize {
        self.dormant_epochs
    }

    /// Lifetime count of watchdog-forced re-probes, never reset.
    pub fn reprobes(&self) -> usize {
        self.reprobes
    }

    /// Classifies the controller's health from state it already keeps —
    /// O(1), no sampling, no estimator work. See [`HealthState`].
    pub fn health(&self) -> HealthState {
        if self.dormant {
            return HealthState::Dormant;
        }
        if self.missed_streak > 0 || (self.mode == Mode::Probe && self.epoch_index > 0) {
            return HealthState::Recovering;
        }
        let below_memory = self
            .remembered_max
            .is_some_and(|m| self.rate.value() < m.value() * (1.0 - 1e-9));
        if self.mode == Mode::Steady && below_memory && self.quiet_streak >= SUSPECT_QUIET_EPOCHS {
            return HealthState::SuspectDeadlocked;
        }
        HealthState::Healthy
    }

    /// The rate [`Self::begin_reprobe`] would request, without mutating
    /// anything — the watchdog's affordability peek, so admission control
    /// can price a re-probe against its recovery pool *before* committing
    /// the controller to it.
    pub fn reprobe_rate(&self) -> Hertz {
        let remembered = self
            .remembered_max
            .map_or(self.rate.value(), |m| m.value() * self.config.headroom);
        Hertz(
            remembered
                .max(self.rate.value())
                .clamp(self.config.min_rate.value(), self.config.max_rate.value()),
        )
    }

    /// Forces the controller into a watchdog-scheduled re-probe **above**
    /// its remembered maximum: the next epoch runs in probe mode at
    /// `headroom × remembered max` (clamped), with verification due
    /// immediately. This is the fleet-side escape hatch for the aliasing
    /// deadlock the §4.1 detector cannot see: folded tones that land
    /// in-band verify clean at the wrong low rate, and only sampling above
    /// the old requirement can tell a genuinely-calmed signal from a folded
    /// one. One clean epoch at the elevated rate re-settles through the
    /// ordinary [`EpochAction::Settle`] machinery (suspicion retired at the
    /// cost of a single fast epoch); a still-aliased verdict escalates up
    /// the normal probe ladder.
    ///
    /// Returns the rate the re-probe will request, so a budget-admission
    /// layer can account for it. Deliberately does **not** touch the
    /// remembered maximum, deferral counters, or the epoch index — the
    /// re-probe is an ordinary epoch once granted.
    pub fn begin_reprobe(&mut self) -> Hertz {
        let target = self.reprobe_rate();
        self.mode = Mode::Probe;
        self.rate = target;
        self.low_streak = 0;
        self.quiet_streak = 0;
        self.since_verify = 0;
        self.reprobes += 1;
        target
    }

    /// Records a **scheduled** sleep epoch (duty cycle, battery
    /// conservation): the device was never expected to report, so —
    /// unlike [`Self::note_missed_epoch`] — nothing is deferred, the
    /// request does **not** decay, and the missed streak is untouched.
    /// The controller merely notes that its state aged one epoch: the
    /// quiet streak resets (no verification happened) and the next real
    /// epoch is forced to verify, because a regime change during the nap
    /// must not pass unchecked.
    pub fn note_dormant_epoch(&mut self) {
        self.dormant = true;
        self.dormant_epochs += 1;
        // The quiet streak *holds* through a scheduled nap: planned silence
        // is neither evidence of health nor an alarm, and the forced
        // verification on wake-up arbitrates — a clean wake extends the
        // streak, an aliased one breaks it. Resetting here would make a
        // duty-cycled fleet structurally immune to deadlock suspicion (the
        // streak could never span a period shorter than the threshold).
        self.since_verify = self.config.verify_every.max(1);
        self.epoch_index += 1;
    }

    /// Plan-request counts of this controller's FFT planner handle (its
    /// estimator and §4.1 detector share one handle). Summing these over a
    /// fleet in device order is thread-count-invariant — see
    /// [`sweetspot_dsp::fft::FftHandleStats`].
    pub fn fft_handle_stats(&self) -> sweetspot_dsp::fft::FftHandleStats {
        self.estimator.planner().handle_stats()
    }

    /// Heap bytes of the controller's *owned* working storage (its scratch
    /// plus the estimator's) — zero as long as every epoch runs through
    /// [`AdaptiveSampler::step_granted_scratch`] with worker-lent scratch
    /// (the fleet engine's memory-wall invariant).
    pub fn owned_scratch_bytes(&self) -> usize {
        self.scratch.resident_bytes() + self.estimator.scratch_resident_bytes()
    }

    /// Runs one adaptation epoch starting at `start` and returns the report.
    pub fn step<S: SignalSource>(&mut self, source: &mut S, start: Seconds) -> EpochReport {
        let secondary = companion_rate(self.rate);
        // Extend the window until the *slower* stream holds enough samples.
        let min_duration = MIN_EPOCH_SAMPLES as f64 / secondary.value();
        let duration = Seconds(self.config.epoch.value().max(min_duration));
        let rate = self.rate;
        self.step_owned(source, start, rate, duration)
    }

    /// Runs one epoch at an externally `granted` rate over a fixed lockstep
    /// `window` (see the module docs on budget grants).
    ///
    /// `granted` is clamped into `[min_rate, max_rate]`; the window is used
    /// as-is (no auto-extension — fleet epochs must stay aligned). With
    /// `granted == requested_rate()` and a window at least as long as
    /// [`AdaptiveSampler::step`] would pick, this is exactly `step`.
    pub fn step_granted<S: SignalSource>(
        &mut self,
        source: &mut S,
        start: Seconds,
        granted: Hertz,
        window: Seconds,
    ) -> EpochReport {
        let mut scratch = std::mem::take(&mut self.scratch);
        let report = self.step_granted_scratch(&mut scratch, source, start, granted, window);
        self.scratch = scratch;
        report
    }

    /// [`AdaptiveSampler::step_granted`] through caller-owned working
    /// storage — bit-identical results, but a fleet of controllers can share
    /// one warmed-up [`SamplerScratch`] per worker instead of each holding
    /// its own buffers (see [`SamplerScratch`]).
    pub fn step_granted_scratch<S: SignalSource>(
        &mut self,
        scratch: &mut SamplerScratch,
        source: &mut S,
        start: Seconds,
        granted: Hertz,
        window: Seconds,
    ) -> EpochReport {
        assert!(window.value() > 0.0, "window must be positive");
        let clamped = Hertz(
            granted
                .value()
                .clamp(self.config.min_rate.value(), self.config.max_rate.value()),
        );
        self.step_at(scratch, source, start, clamped, window)
    }

    /// Records an epoch whose report never reached the controller: the
    /// device vanished, the poll failed, or the report was dropped in
    /// flight. No samples arrive, nothing is billed — but the epoch still
    /// happened, so it **counts**: `deferred_epochs` advances once per miss
    /// (a device that misses `k` consecutive epochs reports `k`), and
    /// `deferred_samples` grows by the full requested stream.
    ///
    /// Absent evidence is handled by **hold-and-decay**, never a silent
    /// stale estimate: the request holds for the first
    /// `decrease_patience − 1` consecutive misses, then decays by
    /// `1/probe_multiplier` per further miss down to `min_rate` — a device
    /// that stops reporting progressively releases its budget share. The
    /// remembered maximum is untouched, so the re-ramp when evidence
    /// returns is one memory jump, not a fresh probe ladder; and the next
    /// detectable epoch is forced to verify (`since_verify` pinned to the
    /// cadence), so a folded post-outage spectrum cannot pass unchecked.
    pub fn note_missed_epoch(&mut self, start: Seconds, granted: Hertz, window: Seconds) -> EpochReport {
        assert!(window.value() > 0.0, "window must be positive");
        let requested = self.rate;
        let clamped = Hertz(
            granted
                .value()
                .clamp(self.config.min_rate.value(), self.config.max_rate.value()),
        );
        let throttled = clamped.value() < requested.value() * (1.0 - 1e-9);
        self.deferred_epochs += 1;
        self.deferred_samples += (requested.value() * window.value()).round() as usize;
        self.missed_streak += 1;
        self.missed_epochs += 1;
        self.low_streak = 0;
        self.quiet_streak = 0;
        self.dormant = false;
        let next = if self.missed_streak >= self.config.decrease_patience.max(1) {
            Hertz(
                (requested.value() / self.config.probe_multiplier)
                    .max(self.config.min_rate.value()),
            )
        } else {
            requested
        };
        // Whatever state the controller held is now stale by one more
        // epoch: the first report that does arrive must be §4.1-verified.
        self.since_verify = self.config.verify_every.max(1);
        let report = EpochReport {
            index: self.epoch_index,
            start,
            duration: window,
            mode: self.mode,
            requested_rate: requested,
            throttled,
            primary_rate: Hertz(0.0),
            secondary_rate: Hertz(0.0),
            aliased: false,
            estimate: None,
            samples_taken: 0,
            next_rate: next,
            verified: false,
            action: EpochAction::Defer,
        };
        self.rate = next;
        self.epoch_index += 1;
        report
    }

    /// Runs one epoch whose report reaches the controller **late** — after
    /// the next scheduling decision. The device polls at the (clamped)
    /// granted rate and the samples are real (they arrive, are billed, and
    /// cover the signal), but the controller cannot adapt on evidence it
    /// does not have yet: the request holds, no detection or estimation
    /// runs, and the next detectable epoch is forced to verify. The epoch
    /// counts as deferred — adaptation was pushed out — but the arrival
    /// (however late) resets the missed streak: the device is alive.
    pub fn step_delayed_scratch<S: SignalSource>(
        &mut self,
        scratch: &mut SamplerScratch,
        source: &mut S,
        start: Seconds,
        granted: Hertz,
        window: Seconds,
    ) -> EpochReport {
        assert!(window.value() > 0.0, "window must be positive");
        let requested = self.rate;
        let primary = Hertz(
            granted
                .value()
                .clamp(self.config.min_rate.value(), self.config.max_rate.value()),
        );
        let throttled = primary.value() < requested.value() * (1.0 - 1e-9);
        let fast = source.sample_recycled(
            start,
            primary,
            window,
            std::mem::take(&mut scratch.fast_spare),
        );
        let samples_taken = fast.len();
        scratch.fast_spare = fast.into_values();
        self.deferred_epochs += 1;
        if throttled {
            self.deferred_samples +=
                ((requested.value() - primary.value()) * window.value()).round() as usize;
        }
        self.missed_streak = 0;
        self.dormant = false;
        self.since_verify = self.config.verify_every.max(1);
        let report = EpochReport {
            index: self.epoch_index,
            start,
            duration: window,
            mode: self.mode,
            requested_rate: requested,
            throttled,
            primary_rate: primary,
            secondary_rate: Hertz(0.0),
            aliased: false,
            estimate: None,
            samples_taken,
            next_rate: requested,
            verified: false,
            action: EpochAction::Defer,
        };
        self.epoch_index += 1;
        report
    }

    /// Resets the controller after its device rebooted mid-study: back to
    /// probe mode at the (clamped) initial rate, hysteresis and cadence
    /// counters cleared. The remembered maximum **survives** — the §4.2
    /// memory belongs to the monitoring service, not the device — so the
    /// post-reboot re-ramp is bounded: one aliased epoch jumps the request
    /// straight to `headroom × remembered max` instead of re-climbing the
    /// multiplicative probe ladder. Cumulative accounting (`epoch_index`,
    /// deferral counters) is preserved.
    pub fn reboot(&mut self) {
        self.mode = Mode::Probe;
        self.rate = Hertz(
            self.config
                .initial_rate
                .value()
                .clamp(self.config.min_rate.value(), self.config.max_rate.value()),
        );
        self.low_streak = 0;
        self.since_verify = 0;
        self.missed_streak = 0;
        self.quiet_streak = 0;
        self.dormant = false;
    }

    /// Epoch body through the sampler's own scratch (the borrow dance is
    /// pointer-sized moves, never an allocation).
    fn step_owned<S: SignalSource>(
        &mut self,
        source: &mut S,
        start: Seconds,
        primary: Hertz,
        duration: Seconds,
    ) -> EpochReport {
        let mut scratch = std::mem::take(&mut self.scratch);
        let report = self.step_at(&mut scratch, source, start, primary, duration);
        self.scratch = scratch;
        report
    }

    /// Shared epoch body: sample at `primary` over `duration`, verify and
    /// estimate, then update the request for the next epoch.
    fn step_at<S: SignalSource>(
        &mut self,
        scratch: &mut SamplerScratch,
        source: &mut S,
        start: Seconds,
        primary: Hertz,
        duration: Seconds,
    ) -> EpochReport {
        let requested = self.rate;
        let throttled = primary.value() < requested.value() * (1.0 - 1e-9);
        let secondary = companion_rate(primary);

        let expected = |rate: Hertz| (duration.value() * rate.value()).round().max(1.0) as usize;
        // The §4.1 detector needs 16+ samples in *both* streams; when the
        // window cannot even nominally hold them the companion stream buys
        // nothing, so it is not acquired at all.
        let detectable =
            expected(primary) >= MIN_DETECT_SAMPLES && expected(secondary) >= MIN_DETECT_SAMPLES;
        // Batched verification cadence: probing epochs always verify (the
        // verdict is the probe's exit condition); settled epochs verify
        // every `verify_every`-th epoch. The default cadence 1 makes
        // `verify_due` unconditionally true.
        let cadence = self.config.verify_every.max(1);
        let verify_due = self.mode == Mode::Probe || self.since_verify + 1 >= cadence;
        let worth_verifying = detectable && verify_due;
        // An epoch the *cadence* (not the window) kept unverified: handled
        // conservatively below — may raise, never lowers, never probes.
        let skipped_verify = detectable && !verify_due;
        let mut force_verify_next = false;

        let fast = source.sample_recycled(
            start,
            primary,
            duration,
            std::mem::take(&mut scratch.fast_spare),
        );
        let mut samples_taken = fast.len();
        // Share the estimator's planner so the detector reuses the same
        // cached twiddle and window tables every epoch. The detector's
        // preconditions are re-checked on the *actual* series lengths: a
        // source that cleans/re-grids (e.g. a simulated device with sample
        // loss) can return slightly fewer samples than the window promised.
        let mut verified = false;
        let mut verdict_aliased = false;
        if worth_verifying {
            let slow = source.sample_recycled(
                start,
                secondary,
                duration,
                std::mem::take(&mut scratch.slow_spare),
            );
            samples_taken += slow.len();
            if fast.len() >= MIN_DETECT_SAMPLES && slow.len() >= MIN_DETECT_SAMPLES {
                verified = true;
                verdict_aliased = detect_aliasing_scratch(
                    self.estimator.planner_mut(),
                    &mut scratch.detect,
                    &fast,
                    &slow,
                    self.config.detector,
                )
                .aliased;
            }
            scratch.slow_spare = slow.into_values();
        }
        // The estimator is only meaningful with a full window's worth of
        // samples (see module docs); a short window contributes no evidence.
        let estimator_trusted = fast.len() >= MIN_EPOCH_SAMPLES;
        let mut estimate = if estimator_trusted {
            self.estimator
                .estimate_series_with(&mut scratch.estimator, &fast)
        } else {
            NyquistEstimate::Aliased
        };
        if verified && !verdict_aliased && estimator_trusted && estimate.is_aliased() {
            // The flat-spectrum guard says "aliased" but an actual dual-rate
            // verification ran and found the two spectra consistent: the
            // flatness is noise, not folding (§4.1 is the arbiter of
            // aliasing — that is its whole job). The signal has no
            // structured content above the window's resolution, so floor
            // the estimate at one FFT bin (§3.2's own resolution floor)
            // instead of probing a noise floor all the way to `max_rate`.
            estimate = NyquistEstimate::Rate(Hertz(2.0 * primary.value() / fast.len() as f64));
        }
        let aliased = verdict_aliased || (estimator_trusted && estimate.is_aliased());
        scratch.fast_spare = fast.into_values();

        if throttled {
            self.deferred_epochs += 1;
            self.deferred_samples +=
                ((requested.value() - primary.value()) * duration.value()).round() as usize;
        }

        let mode_now = self.mode;
        if let NyquistEstimate::Rate(r) = estimate {
            if !aliased {
                let best = self.remembered_max.map_or(0.0, |m| m.value());
                if r.value() > best {
                    self.remembered_max = Some(r);
                }
            }
        }

        let mut action = EpochAction::Hold;
        let next = if aliased && skipped_verify {
            // The flat-spectrum guard fired on an epoch whose §4.1 verdict
            // the cadence skipped. With verification the override above
            // would usually clear it (§4.1 is the arbiter); without it,
            // probing on guard evidence alone would wreck the settled rate.
            // Hold the request and pull verification forward instead.
            force_verify_next = true;
            requested
        } else if aliased {
            self.mode = Mode::Probe;
            self.low_streak = 0;
            let escalated = primary.value() * self.config.probe_multiplier;
            action = EpochAction::Probe;
            let target = if self.config.memory {
                // Fast re-ramp: jump straight to the remembered requirement.
                let remembered = self
                    .remembered_max
                    .map_or(0.0, |m| m.value() * self.config.headroom);
                if remembered > escalated {
                    action = EpochAction::Reramp;
                }
                escalated.max(remembered)
            } else {
                escalated
            };
            Hertz(target.clamp(self.config.min_rate.value(), self.config.max_rate.value()))
        } else if !estimator_trusted {
            // Evidence-free epoch (window too short at this rate): hold the
            // request and every piece of controller state.
            requested
        } else {
            let nyq = estimate.rate().expect("not aliased").value();
            let target = (nyq * self.config.headroom)
                .clamp(self.config.min_rate.value(), self.config.max_rate.value());
            match self.mode {
                Mode::Probe => {
                    // Found the rate: settle directly.
                    self.mode = Mode::Steady;
                    self.low_streak = 0;
                    action = EpochAction::Settle;
                    Hertz(target)
                }
                Mode::Steady => {
                    if target > primary.value() {
                        // Content rose but has not aliased yet (headroom did
                        // its job): follow it up immediately. Raising on a
                        // skipped epoch is safe, but confirm it promptly.
                        self.low_streak = 0;
                        if skipped_verify {
                            force_verify_next = true;
                        }
                        action = EpochAction::Raise;
                        Hertz(target)
                    } else if (throttled && !verified) || skipped_verify {
                        // Unverifiable cut epoch — or one the verification
                        // cadence skipped: a folded spectrum can look clean,
                        // so hold the request and freeze the decrease
                        // hysteresis until the detector can run again.
                        requested
                    } else if target < primary.value() * self.config.decrease_threshold {
                        self.low_streak += 1;
                        if self.low_streak >= self.config.decrease_patience {
                            self.low_streak = 0;
                            action = EpochAction::Cut;
                            Hertz(target)
                        } else {
                            primary
                        }
                    } else {
                        self.low_streak = 0;
                        primary
                    }
                }
            }
        };
        // A throttled epoch that aliased — or could not run the detector at
        // all — may raise the request but never lowers it. A *verified*
        // throttled epoch is trusted (the detector certified the cut rate),
        // so its `next` stands as computed.
        let next = if throttled && (aliased || !verified) {
            Hertz(next.value().max(requested.value()))
        } else {
            next
        };

        let report = EpochReport {
            index: self.epoch_index,
            start,
            duration,
            mode: mode_now,
            requested_rate: requested,
            throttled,
            primary_rate: primary,
            secondary_rate: secondary,
            aliased,
            estimate: estimate.rate(),
            samples_taken,
            next_rate: next,
            verified,
            action,
        };
        // Verification-cadence bookkeeping. `force_verify_next` pins the
        // counter at the cadence so the very next detectable epoch is due.
        if verified {
            self.since_verify = 0;
        } else {
            self.since_verify = self.since_verify.saturating_add(1);
        }
        if force_verify_next {
            self.since_verify = cadence;
        }
        // Health bookkeeping (observation only — nothing above consults it):
        // a settled epoch extends the quiet streak when it verified clean
        // *or* when it was too slow to produce evidence at all — a rate so
        // low the estimator cannot run is the deadlock's terminal form, and
        // silence must read as suspicious, not exculpatory. Aliasing or a
        // probing epoch breaks the streak; a settled epoch whose verification
        // was merely not due (estimator still watching) holds it.
        if aliased || mode_now == Mode::Probe {
            self.quiet_streak = 0;
        } else if verified || !estimator_trusted {
            self.quiet_streak += 1;
        }
        self.dormant = false;
        // This epoch's report arrived: the device is reporting again.
        self.missed_streak = 0;
        self.rate = next;
        self.epoch_index += 1;
        report
    }

    /// Runs epochs back-to-back from `t = 0` until `total` time is covered.
    pub fn run<S: SignalSource>(&mut self, source: &mut S, total: Seconds) -> Vec<EpochReport> {
        let mut reports = Vec::new();
        let mut t = Seconds::ZERO;
        while t.value() < total.value() {
            let r = self.step(source, t);
            t = t + r.duration;
            reports.push(r);
        }
        reports
    }
}

/// Total acquisition cost (samples) of a run.
pub fn total_samples(reports: &[EpochReport]) -> usize {
    reports.iter().map(|r| r.samples_taken).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::FunctionSource;
    use std::f64::consts::PI;

    /// Band-limited test signal: tones at `edge/4` and `edge`.
    fn band_signal(edge: f64) -> impl FnMut(f64) -> f64 {
        move |t| {
            (2.0 * PI * edge * 0.25 * t).sin() + 0.6 * (2.0 * PI * edge * t).sin()
        }
    }

    fn config(initial: f64, epoch: f64) -> AdaptiveConfig {
        AdaptiveConfig {
            initial_rate: Hertz(initial),
            min_rate: Hertz(1e-4),
            max_rate: Hertz(64.0),
            epoch: Seconds(epoch),
            ..AdaptiveConfig::default()
        }
    }

    #[test]
    fn batched_verification_cuts_cost_without_losing_the_rate() {
        let edge = 0.5; // true Nyquist sampling rate = 1.0 Hz
        let run = |verify_every: usize| {
            let mut source = FunctionSource::new(band_signal(edge));
            let mut ctl = AdaptiveSampler::new(AdaptiveConfig {
                verify_every,
                ..config(0.3, 2000.0)
            });
            ctl.run(&mut source, Seconds(60_000.0))
        };
        let continuous = run(1);
        let batched = run(3);
        // verify_every: 1 must be exactly the classic controller — the
        // default constructed in `config()` already says 1, so this pins
        // the representation too.
        assert_eq!(continuous, run(1));
        // Skipping 2 of 3 companion streams on settled epochs must save
        // samples...
        assert!(
            total_samples(&batched) < total_samples(&continuous),
            "batched {} vs continuous {}",
            total_samples(&batched),
            total_samples(&continuous)
        );
        // ...without losing the adapted rate: skipped epochs may hold or
        // raise but never lower, so the settled rate stays in the same
        // band as continuous verification.
        let last_c = continuous.last().unwrap().primary_rate.value();
        let last_b = batched.last().unwrap().primary_rate.value();
        assert!(
            last_b >= 1.0 && last_b <= last_c * 2.0 + 1.0,
            "batched settled at {last_b}, continuous at {last_c}"
        );
    }

    #[test]
    fn skipped_epochs_count_toward_the_next_verification() {
        let edge = 0.5;
        let mut source = FunctionSource::new(band_signal(edge));
        let mut ctl = AdaptiveSampler::new(AdaptiveConfig {
            verify_every: 4,
            ..config(2.0, 2000.0)
        });
        let reports = ctl.run(&mut source, Seconds(80_000.0));
        // Once steady, epochs acquiring the companion stream (≈ +60% the
        // samples of a skipped epoch at the same rate) must appear at the
        // k=4 cadence: at least one verified epoch in every 4 consecutive
        // settled epochs at a held rate.
        let steady: Vec<&EpochReport> = reports
            .iter()
            .filter(|r| r.mode == Mode::Steady && !r.aliased)
            .collect();
        assert!(steady.len() >= 8, "need a settled tail, got {}", steady.len());
        let held: Vec<usize> = steady.iter().map(|r| r.samples_taken).collect();
        // Window of 4: the max (verified) must exceed the min (skipped) —
        // both populations exist within every cadence period.
        for w in held.windows(4) {
            let lo = w.iter().min().unwrap();
            let hi = w.iter().max().unwrap();
            assert!(
                hi > lo,
                "no verification inside a cadence window: {w:?} of {held:?}"
            );
        }
    }

    #[test]
    fn undersampled_start_probes_up_and_settles() {
        let edge = 0.5; // true Nyquist sampling rate = 1.0 Hz
        let mut source = FunctionSource::new(band_signal(edge));
        // Start at 0.3 Hz — well under the signal's Nyquist rate.
        let mut ctl = AdaptiveSampler::new(config(0.3, 2000.0));
        let reports = ctl.run(&mut source, Seconds(30_000.0));

        assert_eq!(reports[0].mode, Mode::Probe);
        assert!(reports[0].aliased, "initial rate must alias");
        // Rates increase multiplicatively during the probe phase.
        let probe_rates: Vec<f64> = reports
            .iter()
            .take_while(|r| r.mode == Mode::Probe)
            .map(|r| r.primary_rate.value())
            .collect();
        assert!(probe_rates.len() >= 2, "should take multiple probe epochs");
        for w in probe_rates.windows(2) {
            assert!(w[1] > w[0]);
        }
        // Eventually steady, at ≥ the true Nyquist rate but far below max.
        let last = reports.last().unwrap();
        assert_eq!(ctl.mode(), Mode::Steady);
        assert!(!last.aliased);
        assert!(
            last.primary_rate.value() >= 1.0 && last.primary_rate.value() <= 6.0,
            "settled at {}",
            last.primary_rate
        );
    }

    #[test]
    fn oversampled_start_drops_quickly() {
        let edge = 0.05; // Nyquist rate 0.1 Hz
        let mut source = FunctionSource::new(band_signal(edge));
        // Start 100× above the Nyquist rate.
        let mut ctl = AdaptiveSampler::new(config(10.0, 5000.0));
        let reports = ctl.run(&mut source, Seconds(40_000.0));
        let first = &reports[0];
        assert!(!first.aliased);
        // One epoch is enough to find the right rate.
        assert!(
            first.next_rate.value() < 1.0,
            "should drop from 10 Hz to ≈0.17 Hz, got {}",
            first.next_rate
        );
        let last = reports.last().unwrap();
        assert!(last.primary_rate.value() < 0.5);
        assert!(!last.aliased);
    }

    #[test]
    fn respects_max_rate_ceiling() {
        // Band edge so high the ceiling cannot resolve it.
        let mut source = FunctionSource::new(|t: f64| (2.0 * PI * 40.0 * t).sin());
        let mut ctl = AdaptiveSampler::new(AdaptiveConfig {
            initial_rate: Hertz(1.0),
            max_rate: Hertz(16.0),
            min_rate: Hertz(1e-4),
            epoch: Seconds(100.0),
            ..AdaptiveConfig::default()
        });
        let reports = ctl.run(&mut source, Seconds(2000.0));
        for r in &reports {
            assert!(r.primary_rate.value() <= 16.0 + 1e-12);
            assert!(r.next_rate.value() <= 16.0 + 1e-12);
        }
        // Never able to clear aliasing → still probing at the ceiling.
        assert_eq!(reports.last().unwrap().mode, Mode::Probe);
    }

    #[test]
    fn decrease_needs_patience() {
        // Signal whose high tone vanishes halfway through the run.
        let mut source = FunctionSource::new(|t: f64| {
            let base = (2.0 * PI * 0.01 * t).sin();
            if t < 40_000.0 {
                base + 0.8 * (2.0 * PI * 0.2 * t).sin()
            } else {
                base
            }
        });
        let mut ctl = AdaptiveSampler::new(AdaptiveConfig {
            initial_rate: Hertz(2.0),
            min_rate: Hertz(1e-4),
            max_rate: Hertz(64.0),
            epoch: Seconds(4000.0),
            decrease_patience: 3,
            ..AdaptiveConfig::default()
        });
        let reports = ctl.run(&mut source, Seconds(120_000.0));
        let early = reports.iter().find(|r| r.start.value() < 30_000.0).unwrap();
        let late = reports.last().unwrap();
        assert!(
            late.primary_rate.value() < early.primary_rate.value() / 3.0,
            "late rate {} should be well below early {}",
            late.primary_rate,
            early.primary_rate
        );
        // The drop must not happen on the first low estimate.
        let steady_after_change: Vec<&EpochReport> = reports
            .iter()
            .filter(|r| r.start.value() >= 40_000.0 && r.mode == Mode::Steady)
            .collect();
        if steady_after_change.len() >= 2 {
            assert_eq!(
                steady_after_change[0].next_rate, steady_after_change[0].primary_rate,
                "first low epoch must hold the rate (patience)"
            );
        }
    }

    #[test]
    fn memory_reramps_faster_than_no_memory() {
        // Two identical flap episodes separated by a quiet stretch. The
        // first episode is long enough (10 epochs) for the probe ladder to
        // clear aliasing and *record* the required rate; the recurrence then
        // separates the two strategies.
        let flappy = |t: f64| {
            let base = (2.0 * PI * 0.005 * t).sin();
            let flap = |t0: f64, t1: f64, t: f64| {
                if t >= t0 && t < t1 {
                    0.9 * (2.0 * PI * 0.5 * t).sin()
                } else {
                    0.0
                }
            };
            base + flap(50_000.0, 100_000.0, t) + flap(160_000.0, 210_000.0, t)
        };
        let run = |memory: bool| {
            let mut source = FunctionSource::new(flappy);
            let mut ctl = AdaptiveSampler::new(AdaptiveConfig {
                initial_rate: Hertz(0.05),
                min_rate: Hertz(1e-4),
                max_rate: Hertz(64.0),
                epoch: Seconds(5000.0),
                memory,
                ..AdaptiveConfig::default()
            });
            ctl.run(&mut source, Seconds(250_000.0))
        };
        let with_memory = run(true);
        let without_memory = run(false);
        // Count probe (aliased) epochs during the *second* flap.
        let probes = |reports: &[EpochReport]| {
            reports
                .iter()
                .filter(|r| r.start.value() >= 160_000.0 && r.start.value() < 210_000.0)
                .filter(|r| r.aliased)
                .count()
        };
        let with_count = probes(&with_memory);
        let without_count = probes(&without_memory);
        assert!(
            with_count < without_count,
            "memory ({with_count} probe epochs) must re-ramp faster than \
             no-memory ({without_count})"
        );
        // And memory should reach a non-aliased epoch during the second flap.
        assert!(with_memory
            .iter()
            .any(|r| r.start.value() >= 160_000.0 && r.start.value() < 210_000.0 && !r.aliased));
    }

    #[test]
    fn headroom_floor_enforced() {
        let ctl = AdaptiveSampler::new(AdaptiveConfig {
            headroom: 1.0,
            ..AdaptiveConfig::default()
        });
        assert!(ctl.config.headroom >= MIN_VERIFY_HEADROOM);
    }

    #[test]
    fn epoch_window_extends_for_slow_rates() {
        let mut source = FunctionSource::new(|t: f64| (2.0 * PI * 1e-4 * t).sin());
        let mut ctl = AdaptiveSampler::new(AdaptiveConfig {
            initial_rate: Hertz(0.001),
            min_rate: Hertz(1e-6),
            max_rate: Hertz(1.0),
            epoch: Seconds(10.0), // nominal epoch is far too short
            ..AdaptiveConfig::default()
        });
        let r = ctl.step(&mut source, Seconds::ZERO);
        // Companion rate ≈ 0.000618 → 64 samples need ≥ ~103k s.
        assert!(r.duration.value() >= 64.0 / r.secondary_rate.value() * 0.99);
        assert!(r.samples_taken >= 64);
    }

    #[test]
    fn cost_accounting_sums_epochs() {
        let mut source = FunctionSource::new(|t: f64| (2.0 * PI * 0.01 * t).sin());
        let mut ctl = AdaptiveSampler::new(config(1.0, 1000.0));
        let reports = ctl.run(&mut source, Seconds(5000.0));
        let total = total_samples(&reports);
        assert_eq!(
            total,
            reports.iter().map(|r| r.samples_taken).sum::<usize>()
        );
        assert!(total > 0);
    }

    #[test]
    #[should_panic(expected = "probe_multiplier")]
    fn bad_multiplier_panics() {
        AdaptiveSampler::new(AdaptiveConfig {
            probe_multiplier: 1.0,
            ..AdaptiveConfig::default()
        });
    }

    #[test]
    fn step_granted_full_grant_matches_step_exactly() {
        // With grant == request and the lockstep window equal to what step()
        // would pick, the budget-aware path must be bit-identical to the
        // classic controller (the fleetsim uncapped-policy guarantee).
        let edge = 0.5;
        let mut src_a = FunctionSource::new(band_signal(edge));
        let mut src_b = FunctionSource::new(band_signal(edge));
        let mut classic = AdaptiveSampler::new(config(0.3, 2000.0));
        let mut granted = AdaptiveSampler::new(config(0.3, 2000.0));
        let mut t = Seconds::ZERO;
        for _ in 0..12 {
            let a = classic.step(&mut src_a, t);
            let window = a.duration;
            let b = granted.step_granted(&mut src_b, t, granted.requested_rate(), window);
            assert_eq!(a, b);
            t = t + a.duration;
        }
        assert_eq!(classic.deferred_epochs(), 0);
        assert_eq!(granted.deferred_epochs(), 0);
    }

    #[test]
    fn remembered_max_reramps_after_forced_cut() {
        // Settle on a signal, force a deep cut for a few epochs, then restore
        // the grant: the remembered maximum must carry the request straight
        // back up instead of re-climbing the probe ladder from the cut rate.
        let edge = 0.5; // true Nyquist sampling rate = 1.0 Hz
        let mut source = FunctionSource::new(band_signal(edge));
        let mut ctl = AdaptiveSampler::new(config(0.3, 2000.0));
        let mut t = Seconds::ZERO;
        // Reach steady state.
        for _ in 0..12 {
            let r = ctl.step(&mut source, t);
            t = t + r.duration;
        }
        assert_eq!(ctl.mode(), Mode::Steady);
        let settled = ctl.requested_rate();
        let remembered = ctl.remembered_max().expect("steady implies an estimate");
        let window = Seconds(2000.0);

        // Forced cut: grant an eighth of the request.
        let cut = Hertz(settled.value() / 8.0);
        let before = ctl.deferred_epochs();
        for _ in 0..3 {
            let r = ctl.step_granted(&mut source, t, cut, window);
            assert!(r.throttled, "grant below request must be recorded");
            assert!(
                r.next_rate.value() >= settled.value() * (1.0 - 1e-9),
                "throttled epoch must not lower the request: {} < {}",
                r.next_rate,
                settled
            );
            t = t + window;
        }
        assert_eq!(ctl.deferred_epochs(), before + 3);
        assert!(ctl.deferred_samples() > 0);

        // Budget restored: the very next fully-granted epoch runs at (or
        // above) the remembered requirement — no probe ladder.
        let r = ctl.step_granted(&mut source, t, ctl.requested_rate(), window);
        assert!(!r.throttled);
        assert!(
            r.primary_rate.value() >= remembered.value(),
            "re-ramp must reuse the Nyquist memory: {} < {}",
            r.primary_rate,
            remembered
        );
    }

    #[test]
    fn oscillating_estimates_never_defeat_decrease_patience() {
        // Estimates that alternate low/high must keep resetting the patience
        // counter: the rate only drops after `decrease_patience` *consecutive*
        // low epochs, so an oscillating signal holds the settled rate.
        let patience = 3;
        // Alternate the high tone on/off every 4000 s epoch: epochs see
        // demand flip between ~0.1 Hz and ~1.65 Hz targets.
        let mut source = FunctionSource::new(|t: f64| {
            let base = (2.0 * PI * 0.01 * t).sin();
            let epoch = (t / 4000.0).floor() as i64;
            if epoch % 2 == 0 {
                base + 0.8 * (2.0 * PI * 0.45 * t).sin()
            } else {
                base
            }
        });
        let mut ctl = AdaptiveSampler::new(AdaptiveConfig {
            initial_rate: Hertz(2.0),
            min_rate: Hertz(1e-4),
            max_rate: Hertz(64.0),
            epoch: Seconds(4000.0),
            decrease_patience: patience,
            ..AdaptiveConfig::default()
        });
        let reports = ctl.run(&mut source, Seconds(120_000.0));
        let steady: Vec<&EpochReport> =
            reports.iter().filter(|r| r.mode == Mode::Steady).collect();
        assert!(steady.len() >= 8, "need a settled stretch, got {}", steady.len());
        // No steady epoch may cut the rate by more than the hysteresis
        // threshold in one step without `patience` low epochs before it.
        for w in steady.windows(patience) {
            let dropped = w
                .last()
                .unwrap()
                .next_rate
                .value()
                < w[0].primary_rate.value() * 0.7;
            if dropped {
                // A drop is only legitimate if every epoch in the window saw
                // a low estimate — oscillation must have prevented that.
                let all_low = w.iter().all(|r| {
                    r.estimate
                        .is_some_and(|e| e.value() * MIN_VERIFY_HEADROOM < r.primary_rate.value() * 0.7)
                });
                assert!(
                    all_low,
                    "rate dropped without {patience} consecutive low epochs"
                );
            }
        }
    }

    #[test]
    fn grant_clamps_to_min_and_max_rate() {
        let edge = 0.05;
        let mut source = FunctionSource::new(band_signal(edge));
        let mut ctl = AdaptiveSampler::new(AdaptiveConfig {
            initial_rate: Hertz(1.0),
            min_rate: Hertz(0.02),
            max_rate: Hertz(8.0),
            epoch: Seconds(5000.0),
            ..AdaptiveConfig::default()
        });
        let window = Seconds(5000.0);
        // Settle first so there is an estimate to undercut.
        let mut t = Seconds::ZERO;
        for _ in 0..4 {
            let r = ctl.step_granted(&mut source, t, ctl.requested_rate(), window);
            t = t + r.duration;
        }
        let estimate = ctl.remembered_max().expect("settled");

        // A grant far below MIN_VERIFY_HEADROOM × estimate — and below
        // min_rate — must clamp up to min_rate, not run at the raw grant.
        let starve = Hertz((estimate.value() * MIN_VERIFY_HEADROOM) / 1e6);
        assert!(starve.value() < 0.02);
        let r = ctl.step_granted(&mut source, t, starve, window);
        assert_eq!(r.primary_rate, Hertz(0.02), "grant must clamp to min_rate");
        assert!(r.throttled);
        t = t + window;

        // An absurdly high grant clamps to max_rate and is not throttling.
        let r = ctl.step_granted(&mut source, t, Hertz(1e9), window);
        assert_eq!(r.primary_rate, Hertz(8.0), "grant must clamp to max_rate");
        assert!(!r.throttled, "a grant above the request is not a cut");
    }

    #[test]
    fn k_missed_epochs_report_k_deferred() {
        // A device that misses k consecutive epochs must report exactly k in
        // deferred_epochs — the counter cannot only advance on granted
        // epochs (the report never arriving IS the deferral).
        let edge = 0.5;
        let mut source = FunctionSource::new(band_signal(edge));
        let mut ctl = AdaptiveSampler::new(config(0.3, 2000.0));
        let window = Seconds(2000.0);
        let mut t = Seconds::ZERO;
        for _ in 0..10 {
            let r = ctl.step_granted(&mut source, t, ctl.requested_rate(), window);
            t = t + r.duration;
        }
        assert_eq!(ctl.mode(), Mode::Steady);
        assert_eq!(ctl.deferred_epochs(), 0, "full grants defer nothing");
        let settled = ctl.requested_rate();
        let remembered = ctl.remembered_max().expect("settled");

        let k = 5;
        for miss in 1..=k {
            let r = ctl.note_missed_epoch(t, settled, window);
            assert_eq!(r.samples_taken, 0, "nothing arrives on a missed epoch");
            assert_eq!(ctl.deferred_epochs(), miss, "miss {miss} must count");
            assert_eq!(ctl.missed_streak(), miss);
            t = t + window;
        }
        assert_eq!(ctl.deferred_epochs(), k);
        assert!(ctl.deferred_samples() > 0);

        // Hold-and-decay: held through the patience window, decaying after.
        let patience = ctl.config.decrease_patience; // 3
        let mut probe = AdaptiveSampler::new(config(0.3, 2000.0));
        let mut src2 = FunctionSource::new(band_signal(edge));
        let mut t2 = Seconds::ZERO;
        for _ in 0..10 {
            let r = probe.step_granted(&mut src2, t2, probe.requested_rate(), window);
            t2 = t2 + r.duration;
        }
        let before = probe.requested_rate();
        for miss in 1..=6 {
            let r = probe.note_missed_epoch(t2, probe.requested_rate(), window);
            if miss < patience {
                assert_eq!(r.next_rate, before, "miss {miss} must hold the request");
            } else {
                assert!(
                    r.next_rate.value() < r.requested_rate.value(),
                    "miss {miss} must decay the request"
                );
            }
            t2 = t2 + window;
        }
        assert!(
            probe.requested_rate().value() < before.value(),
            "a silent device must progressively release its budget share"
        );
        // The memory survives the outage: the stale estimate is never
        // silently trusted, but the re-ramp stays one jump away.
        assert_eq!(ctl.remembered_max(), Some(remembered));
    }

    #[test]
    fn reboot_reramps_bounded_by_remembered_max() {
        let edge = 0.5; // true Nyquist sampling rate = 1.0 Hz
        let mut source = FunctionSource::new(band_signal(edge));
        let mut ctl = AdaptiveSampler::new(config(0.3, 2000.0));
        let window = Seconds(2000.0);
        let mut t = Seconds::ZERO;
        for _ in 0..10 {
            let r = ctl.step_granted(&mut source, t, ctl.requested_rate(), window);
            t = t + r.duration;
        }
        assert_eq!(ctl.mode(), Mode::Steady);
        let remembered = ctl.remembered_max().expect("settled");
        let bound = remembered.value() * ctl.config.headroom * (1.0 + 1e-9);

        ctl.reboot();
        assert_eq!(ctl.mode(), Mode::Probe);
        assert_eq!(ctl.requested_rate(), Hertz(0.3), "reboot restarts at the initial rate");
        assert_eq!(ctl.remembered_max(), Some(remembered), "memory survives the reboot");

        // Re-ramp: one aliased epoch jumps to headroom × remembered max —
        // never past it (bounded, no ladder past the known requirement).
        let mut reached = false;
        for _ in 0..4 {
            let r = ctl.step_granted(&mut source, t, ctl.requested_rate(), window);
            assert!(
                r.next_rate.value() <= bound,
                "re-ramp overshot the remembered bound: {} > {}",
                r.next_rate,
                Hertz(bound)
            );
            t = t + window;
            if ctl.mode() == Mode::Steady {
                reached = true;
                break;
            }
        }
        assert!(reached, "reboot re-ramp must re-settle within a few epochs");
        assert!(
            ctl.requested_rate().value() >= remembered.value(),
            "re-settled request {} must cover the remembered requirement {}",
            ctl.requested_rate(),
            remembered
        );
    }

    #[test]
    fn delayed_epoch_samples_but_freezes_adaptation() {
        let edge = 0.5;
        let mut source = FunctionSource::new(band_signal(edge));
        let mut ctl = AdaptiveSampler::new(config(0.3, 2000.0));
        let window = Seconds(2000.0);
        let mut t = Seconds::ZERO;
        for _ in 0..10 {
            let r = ctl.step_granted(&mut source, t, ctl.requested_rate(), window);
            t = t + r.duration;
        }
        let settled = ctl.requested_rate();
        let deferred = ctl.deferred_epochs();
        let mut scratch = SamplerScratch::new();
        let r = ctl.step_delayed_scratch(&mut scratch, &mut source, t, settled, window);
        // The data is real (billed, covering the signal) ...
        assert!(r.samples_taken > 0, "a delayed report still acquires samples");
        assert_eq!(r.primary_rate, settled);
        // ... but the controller could not adapt on it in time.
        assert_eq!(r.next_rate, settled, "late evidence must hold the request");
        assert_eq!(ctl.deferred_epochs(), deferred + 1);
        assert_eq!(ctl.missed_streak(), 0, "an arriving report resets the missed streak");
    }

    #[test]
    fn health_classifier_tracks_the_controller_lifecycle() {
        let edge = 0.5;
        let mut source = FunctionSource::new(band_signal(edge));
        let mut ctl = AdaptiveSampler::new(config(0.3, 2000.0));
        let window = Seconds(2000.0);
        let mut t = Seconds::ZERO;
        // Probing epochs classify as Recovering (after the first step).
        let r = ctl.step_granted(&mut source, t, ctl.requested_rate(), window);
        t = t + r.duration;
        if ctl.mode() == Mode::Probe {
            assert_eq!(ctl.health(), HealthState::Recovering);
        }
        // Settle and run a clean streak: with the request at or above the
        // remembered max (headroom > 1), the controller is Healthy.
        for _ in 0..10 {
            let r = ctl.step_granted(&mut source, t, ctl.requested_rate(), window);
            t = t + r.duration;
        }
        assert_eq!(ctl.mode(), Mode::Steady);
        assert!(ctl.quiet_streak() >= SUSPECT_QUIET_EPOCHS);
        assert_eq!(ctl.health(), HealthState::Healthy);
        // A missed epoch flips to Recovering and breaks the quiet streak.
        ctl.note_missed_epoch(t, ctl.requested_rate(), window);
        t = t + window;
        assert_eq!(ctl.health(), HealthState::Recovering);
        assert_eq!(ctl.quiet_streak(), 0);
        // A dormant epoch reports Dormant until the next real step.
        ctl.note_dormant_epoch();
        assert_eq!(ctl.health(), HealthState::Dormant);
        assert_eq!(ctl.dormant_epochs(), 1);
        let r = ctl.step_granted(&mut source, t, ctl.requested_rate(), window);
        t = t + r.duration;
        assert_ne!(ctl.health(), HealthState::Dormant);
        let _ = t;
    }

    #[test]
    fn settled_below_memory_is_suspect_and_reprobe_retires_it() {
        // Settle on a two-tone signal, then drop the high tone: the
        // controller legitimately cuts to the lower requirement, but its
        // request is now below the remembered max with clean verification —
        // the SuspectDeadlocked signature (over-inclusive by design). A
        // forced re-probe runs one epoch above the old requirement and
        // re-settles, retiring the suspicion.
        let mut source = FunctionSource::new(|t: f64| {
            let base = (2.0 * PI * 0.01 * t).sin();
            if t < 60_000.0 {
                base + 0.8 * (2.0 * PI * 0.45 * t).sin()
            } else {
                base
            }
        });
        let mut ctl = AdaptiveSampler::new(config(0.3, 4000.0));
        let window = Seconds(4000.0);
        let mut t = Seconds::ZERO;
        // Settle on the fast regime, then ride through the tone loss and the
        // patience-gated cut, then keep stepping until the quiet streak
        // qualifies as suspect.
        let mut suspect_seen = false;
        for _ in 0..40 {
            let r = ctl.step_granted(&mut source, t, ctl.requested_rate(), window);
            t = t + r.duration;
            if ctl.health() == HealthState::SuspectDeadlocked {
                suspect_seen = true;
                break;
            }
        }
        assert!(suspect_seen, "the cut-below-memory state must classify as suspect");
        let remembered = ctl.remembered_max().expect("settled");
        let before = ctl.requested_rate();
        assert!(before.value() < remembered.value());

        // The forced re-probe requests above the remembered requirement …
        let reprobe = ctl.begin_reprobe();
        assert!(
            reprobe.value() >= remembered.value(),
            "re-probe must sample above the remembered max: {reprobe} < {remembered}"
        );
        assert_eq!(ctl.mode(), Mode::Probe);
        assert_eq!(ctl.reprobes(), 1);
        assert_eq!(ctl.health(), HealthState::Recovering);
        // … and one clean epoch at the elevated rate re-settles near the
        // true (now lower) requirement: suspicion retired, no deadlock.
        let r = ctl.step_granted(&mut source, t, ctl.requested_rate(), window);
        assert_eq!(r.primary_rate, reprobe);
        assert!(!r.aliased, "the calmed signal verifies clean above the old max");
        assert_eq!(ctl.mode(), Mode::Steady);
        assert!(
            ctl.requested_rate().value() <= before.value() * (1.0 + 1e-9),
            "a clean re-probe must hand the rate back: {} > {}",
            ctl.requested_rate(),
            before
        );
    }

    #[test]
    fn dormant_epochs_age_state_without_decaying_the_request() {
        let edge = 0.5;
        let mut source = FunctionSource::new(band_signal(edge));
        let mut ctl = AdaptiveSampler::new(config(0.3, 2000.0));
        let window = Seconds(2000.0);
        let mut t = Seconds::ZERO;
        for _ in 0..10 {
            let r = ctl.step_granted(&mut source, t, ctl.requested_rate(), window);
            t = t + r.duration;
        }
        let settled = ctl.requested_rate();
        let deferred = ctl.deferred_epochs();
        let index_before = {
            let r = ctl.step_granted(&mut source, t, ctl.requested_rate(), window);
            t = t + r.duration;
            r.index
        };
        // A long scheduled nap: the request holds exactly (no hold-and-decay
        // — the silence was planned), nothing defers, epochs still count.
        for _ in 0..6 {
            ctl.note_dormant_epoch();
        }
        assert_eq!(ctl.requested_rate(), settled);
        assert_eq!(ctl.deferred_epochs(), deferred, "dormancy is not a deferral");
        assert_eq!(ctl.missed_streak(), 0, "dormancy is not a missed report");
        assert_eq!(ctl.dormant_epochs(), 6);
        assert_eq!(ctl.health(), HealthState::Dormant);
        // The first epoch after waking is forced to verify (a regime change
        // during the nap must not pass unchecked) and advances the index by
        // exactly the napped epochs plus one.
        let r = ctl.step_granted(&mut source, t, ctl.requested_rate(), window);
        assert!(r.verified, "the wake-up epoch must run the §4.1 detector");
        assert_eq!(r.index, index_before + 7);
    }

    #[test]
    fn unverifiable_epoch_skips_companion_stream() {
        // A window too short for 16 detector samples must not panic, must
        // not bill for a companion stream, and must stay conservative.
        let mut source = FunctionSource::new(band_signal(0.5));
        let mut ctl = AdaptiveSampler::new(config(0.3, 2000.0));
        // 0.02 Hz over 600 s = 12 primary samples < 16.
        let r = ctl.step_granted(&mut source, Seconds::ZERO, Hertz(0.02), Seconds(600.0));
        assert_eq!(r.samples_taken, 12, "companion must not be acquired");
        assert!(r.throttled);
        assert!(
            r.next_rate.value() >= 0.3 * (1.0 - 1e-9),
            "request must survive the unverifiable epoch"
        );
    }
}
