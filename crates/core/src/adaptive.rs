//! The §4.2 dynamic sampling controller.
//!
//! State machine, following the paper's strawman:
//!
//! * **Probe mode** — "Initially, we do not know the Nyquist rate of the
//!   underlying signal and so we must probe, i.e., multiplicatively increase
//!   the measurement rate along with the method in Section 4.1 … While
//!   aliasing persists, we remain in probe mode."
//! * **Steady mode** — "Once we no longer detect aliasing, we use the method
//!   in Section 3.2 which will successfully identify the Nyquist rate of the
//!   signal." The controller then samples at `headroom × estimate` and keeps
//!   verifying with the dual-rate check.
//! * **Adaptive decrease** — "we can optimize the system by also adaptively
//!   decreasing the sampling rate if we observe the Nyquist rate returning
//!   to a lower value" — applied after `decrease_patience` consecutive
//!   epochs of substantially lower estimates (hysteresis).
//! * **Memory** — "We can even 'remember' previous maximum Nyquist rates to
//!   ramp up more quickly in the future": on re-entering probe mode the
//!   controller jumps straight to the remembered maximum.
//!
//! ### Headroom floor
//!
//! Steady-state verification samples a companion stream at `rate/φ`
//! (φ ≈ 1.618, guaranteeing the non-integer ratio of §4.1). The companion's
//! band check covers `rate/(2φ)`, so continuous verification is only stable
//! when `rate ≥ 2φ·band_edge` — an effective headroom of ≈1.62× the Nyquist
//! rate. [`AdaptiveSampler::new`] therefore clamps `headroom` up to
//! [`MIN_VERIFY_HEADROOM`]; this is itself a finding about the *real* cost
//! of the paper's always-on detector.

use crate::aliasing::{companion_rate, detect_aliasing_with, DualRateConfig};
use crate::estimator::{NyquistConfig, NyquistEstimate, NyquistEstimator};
use crate::source::SignalSource;
use sweetspot_timeseries::{Hertz, Seconds};

/// Minimum steady-state headroom compatible with continuous dual-rate
/// verification (see module docs).
pub const MIN_VERIFY_HEADROOM: f64 = 1.65;

/// Minimum samples per epoch window for the detector/estimator to be
/// meaningful; shorter windows are auto-extended.
const MIN_EPOCH_SAMPLES: usize = 64;

/// Controller mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Multiplicatively increasing the rate until aliasing clears.
    Probe,
    /// Tracking `headroom × estimated Nyquist`.
    Steady,
}

/// Controller configuration.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveConfig {
    /// Rate used for the very first epoch.
    pub initial_rate: Hertz,
    /// Lowest rate the controller will settle to.
    pub min_rate: Hertz,
    /// Polling ceiling (physical/SNMP limits).
    pub max_rate: Hertz,
    /// Steady-state rate = `headroom × estimated Nyquist rate`. Clamped up
    /// to [`MIN_VERIFY_HEADROOM`].
    pub headroom: f64,
    /// Rate multiplier while probing (paper: multiplicative increase).
    pub probe_multiplier: f64,
    /// Consecutive low-estimate epochs required before decreasing.
    pub decrease_patience: usize,
    /// A new target must be below `decrease_threshold × current` to count
    /// toward the patience counter (hysteresis).
    pub decrease_threshold: f64,
    /// Remember past maxima and re-ramp to them directly.
    pub memory: bool,
    /// Nominal epoch window (auto-extended at very low rates so the window
    /// holds at least 64 samples).
    pub epoch: Seconds,
    /// Estimator settings (§3.2).
    pub estimator: NyquistConfig,
    /// Detector settings (§4.1).
    pub detector: DualRateConfig,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            initial_rate: Hertz(1.0),
            min_rate: Hertz(1e-6),
            max_rate: Hertz(100.0),
            headroom: MIN_VERIFY_HEADROOM,
            probe_multiplier: 2.0,
            decrease_patience: 3,
            decrease_threshold: 0.7,
            memory: true,
            epoch: Seconds(600.0),
            estimator: NyquistConfig::default(),
            detector: DualRateConfig::default(),
        }
    }
}

/// What happened in one adaptation epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochReport {
    /// Epoch number (0-based).
    pub index: usize,
    /// Window start time.
    pub start: Seconds,
    /// Window duration actually used (≥ configured epoch).
    pub duration: Seconds,
    /// Mode during this epoch.
    pub mode: Mode,
    /// Primary sampling rate used.
    pub primary_rate: Hertz,
    /// Companion (verification) rate used.
    pub secondary_rate: Hertz,
    /// Dual-rate detector verdict for this window.
    pub aliased: bool,
    /// §3.2 estimate from the primary window (None when the estimator itself
    /// says "aliased").
    pub estimate: Option<Hertz>,
    /// Total samples acquired this epoch (primary + companion streams).
    pub samples_taken: usize,
    /// Rate chosen for the next epoch.
    pub next_rate: Hertz,
}

/// The dynamic sampler.
pub struct AdaptiveSampler {
    config: AdaptiveConfig,
    estimator: NyquistEstimator,
    mode: Mode,
    rate: Hertz,
    remembered_max: Option<Hertz>,
    low_streak: usize,
    epoch_index: usize,
}

impl AdaptiveSampler {
    /// Creates a controller.
    ///
    /// # Panics
    /// Panics on inconsistent configuration (non-positive rates,
    /// `min > max`, `probe_multiplier <= 1`, non-positive epoch).
    pub fn new(mut config: AdaptiveConfig) -> Self {
        assert!(config.initial_rate.value() > 0.0, "initial_rate must be positive");
        assert!(config.min_rate.value() > 0.0, "min_rate must be positive");
        assert!(
            config.min_rate.value() <= config.max_rate.value(),
            "min_rate must not exceed max_rate"
        );
        assert!(config.probe_multiplier > 1.0, "probe_multiplier must exceed 1");
        assert!(config.epoch.value() > 0.0, "epoch must be positive");
        assert!(
            (0.0..1.0).contains(&config.decrease_threshold),
            "decrease_threshold must be in (0,1)"
        );
        config.headroom = config.headroom.max(MIN_VERIFY_HEADROOM);
        let rate = Hertz(
            config
                .initial_rate
                .value()
                .clamp(config.min_rate.value(), config.max_rate.value()),
        );
        AdaptiveSampler {
            estimator: NyquistEstimator::new(config.estimator),
            config,
            mode: Mode::Probe,
            rate,
            remembered_max: None,
            low_streak: 0,
            epoch_index: 0,
        }
    }

    /// Current mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Rate the next epoch will use.
    pub fn current_rate(&self) -> Hertz {
        self.rate
    }

    /// Highest Nyquist estimate seen so far (the §4.2 "memory").
    pub fn remembered_max(&self) -> Option<Hertz> {
        self.remembered_max
    }

    /// Runs one adaptation epoch starting at `start` and returns the report.
    pub fn step<S: SignalSource>(&mut self, source: &mut S, start: Seconds) -> EpochReport {
        let primary = self.rate;
        let secondary = companion_rate(primary);
        // Extend the window until the *slower* stream holds enough samples.
        let min_duration = MIN_EPOCH_SAMPLES as f64 / secondary.value();
        let duration = Seconds(self.config.epoch.value().max(min_duration));

        let fast = source.sample(start, primary, duration);
        let slow = source.sample(start, secondary, duration);
        let samples_taken = fast.len() + slow.len();

        // Share the estimator's planner so the detector reuses the same
        // cached twiddle and window tables every epoch.
        let verdict =
            detect_aliasing_with(self.estimator.planner_mut(), &fast, &slow, self.config.detector);
        let estimate = self.estimator.estimate_series(&fast);
        let aliased = verdict.aliased || estimate.is_aliased();

        let mode_now = self.mode;
        if let NyquistEstimate::Rate(r) = estimate {
            if !aliased {
                let best = self.remembered_max.map_or(0.0, |m| m.value());
                if r.value() > best {
                    self.remembered_max = Some(r);
                }
            }
        }

        let next = if aliased {
            self.mode = Mode::Probe;
            self.low_streak = 0;
            let escalated = primary.value() * self.config.probe_multiplier;
            let target = if self.config.memory {
                // Fast re-ramp: jump straight to the remembered requirement.
                let remembered = self
                    .remembered_max
                    .map_or(0.0, |m| m.value() * self.config.headroom);
                escalated.max(remembered)
            } else {
                escalated
            };
            Hertz(target.clamp(self.config.min_rate.value(), self.config.max_rate.value()))
        } else {
            let nyq = estimate.rate().expect("not aliased").value();
            let target = (nyq * self.config.headroom)
                .clamp(self.config.min_rate.value(), self.config.max_rate.value());
            match self.mode {
                Mode::Probe => {
                    // Found the rate: settle directly.
                    self.mode = Mode::Steady;
                    self.low_streak = 0;
                    Hertz(target)
                }
                Mode::Steady => {
                    if target > primary.value() {
                        // Content rose but has not aliased yet (headroom did
                        // its job): follow it up immediately.
                        self.low_streak = 0;
                        Hertz(target)
                    } else if target < primary.value() * self.config.decrease_threshold {
                        self.low_streak += 1;
                        if self.low_streak >= self.config.decrease_patience {
                            self.low_streak = 0;
                            Hertz(target)
                        } else {
                            primary
                        }
                    } else {
                        self.low_streak = 0;
                        primary
                    }
                }
            }
        };

        let report = EpochReport {
            index: self.epoch_index,
            start,
            duration,
            mode: mode_now,
            primary_rate: primary,
            secondary_rate: secondary,
            aliased,
            estimate: estimate.rate(),
            samples_taken,
            next_rate: next,
        };
        self.rate = next;
        self.epoch_index += 1;
        report
    }

    /// Runs epochs back-to-back from `t = 0` until `total` time is covered.
    pub fn run<S: SignalSource>(&mut self, source: &mut S, total: Seconds) -> Vec<EpochReport> {
        let mut reports = Vec::new();
        let mut t = Seconds::ZERO;
        while t.value() < total.value() {
            let r = self.step(source, t);
            t = t + r.duration;
            reports.push(r);
        }
        reports
    }
}

/// Total acquisition cost (samples) of a run.
pub fn total_samples(reports: &[EpochReport]) -> usize {
    reports.iter().map(|r| r.samples_taken).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::FunctionSource;
    use std::f64::consts::PI;

    /// Band-limited test signal: tones at `edge/4` and `edge`.
    fn band_signal(edge: f64) -> impl FnMut(f64) -> f64 {
        move |t| {
            (2.0 * PI * edge * 0.25 * t).sin() + 0.6 * (2.0 * PI * edge * t).sin()
        }
    }

    fn config(initial: f64, epoch: f64) -> AdaptiveConfig {
        AdaptiveConfig {
            initial_rate: Hertz(initial),
            min_rate: Hertz(1e-4),
            max_rate: Hertz(64.0),
            epoch: Seconds(epoch),
            ..AdaptiveConfig::default()
        }
    }

    #[test]
    fn undersampled_start_probes_up_and_settles() {
        let edge = 0.5; // true Nyquist sampling rate = 1.0 Hz
        let mut source = FunctionSource::new(band_signal(edge));
        // Start at 0.3 Hz — well under the signal's Nyquist rate.
        let mut ctl = AdaptiveSampler::new(config(0.3, 2000.0));
        let reports = ctl.run(&mut source, Seconds(30_000.0));

        assert_eq!(reports[0].mode, Mode::Probe);
        assert!(reports[0].aliased, "initial rate must alias");
        // Rates increase multiplicatively during the probe phase.
        let probe_rates: Vec<f64> = reports
            .iter()
            .take_while(|r| r.mode == Mode::Probe)
            .map(|r| r.primary_rate.value())
            .collect();
        assert!(probe_rates.len() >= 2, "should take multiple probe epochs");
        for w in probe_rates.windows(2) {
            assert!(w[1] > w[0]);
        }
        // Eventually steady, at ≥ the true Nyquist rate but far below max.
        let last = reports.last().unwrap();
        assert_eq!(ctl.mode(), Mode::Steady);
        assert!(!last.aliased);
        assert!(
            last.primary_rate.value() >= 1.0 && last.primary_rate.value() <= 6.0,
            "settled at {}",
            last.primary_rate
        );
    }

    #[test]
    fn oversampled_start_drops_quickly() {
        let edge = 0.05; // Nyquist rate 0.1 Hz
        let mut source = FunctionSource::new(band_signal(edge));
        // Start 100× above the Nyquist rate.
        let mut ctl = AdaptiveSampler::new(config(10.0, 5000.0));
        let reports = ctl.run(&mut source, Seconds(40_000.0));
        let first = &reports[0];
        assert!(!first.aliased);
        // One epoch is enough to find the right rate.
        assert!(
            first.next_rate.value() < 1.0,
            "should drop from 10 Hz to ≈0.17 Hz, got {}",
            first.next_rate
        );
        let last = reports.last().unwrap();
        assert!(last.primary_rate.value() < 0.5);
        assert!(!last.aliased);
    }

    #[test]
    fn respects_max_rate_ceiling() {
        // Band edge so high the ceiling cannot resolve it.
        let mut source = FunctionSource::new(|t: f64| (2.0 * PI * 40.0 * t).sin());
        let mut ctl = AdaptiveSampler::new(AdaptiveConfig {
            initial_rate: Hertz(1.0),
            max_rate: Hertz(16.0),
            min_rate: Hertz(1e-4),
            epoch: Seconds(100.0),
            ..AdaptiveConfig::default()
        });
        let reports = ctl.run(&mut source, Seconds(2000.0));
        for r in &reports {
            assert!(r.primary_rate.value() <= 16.0 + 1e-12);
            assert!(r.next_rate.value() <= 16.0 + 1e-12);
        }
        // Never able to clear aliasing → still probing at the ceiling.
        assert_eq!(reports.last().unwrap().mode, Mode::Probe);
    }

    #[test]
    fn decrease_needs_patience() {
        // Signal whose high tone vanishes halfway through the run.
        let mut source = FunctionSource::new(|t: f64| {
            let base = (2.0 * PI * 0.01 * t).sin();
            if t < 40_000.0 {
                base + 0.8 * (2.0 * PI * 0.2 * t).sin()
            } else {
                base
            }
        });
        let mut ctl = AdaptiveSampler::new(AdaptiveConfig {
            initial_rate: Hertz(2.0),
            min_rate: Hertz(1e-4),
            max_rate: Hertz(64.0),
            epoch: Seconds(4000.0),
            decrease_patience: 3,
            ..AdaptiveConfig::default()
        });
        let reports = ctl.run(&mut source, Seconds(120_000.0));
        let early = reports.iter().find(|r| r.start.value() < 30_000.0).unwrap();
        let late = reports.last().unwrap();
        assert!(
            late.primary_rate.value() < early.primary_rate.value() / 3.0,
            "late rate {} should be well below early {}",
            late.primary_rate,
            early.primary_rate
        );
        // The drop must not happen on the first low estimate.
        let steady_after_change: Vec<&EpochReport> = reports
            .iter()
            .filter(|r| r.start.value() >= 40_000.0 && r.mode == Mode::Steady)
            .collect();
        if steady_after_change.len() >= 2 {
            assert_eq!(
                steady_after_change[0].next_rate, steady_after_change[0].primary_rate,
                "first low epoch must hold the rate (patience)"
            );
        }
    }

    #[test]
    fn memory_reramps_faster_than_no_memory() {
        // Two identical flap episodes separated by a quiet stretch. The
        // first episode is long enough (10 epochs) for the probe ladder to
        // clear aliasing and *record* the required rate; the recurrence then
        // separates the two strategies.
        let flappy = |t: f64| {
            let base = (2.0 * PI * 0.005 * t).sin();
            let flap = |t0: f64, t1: f64, t: f64| {
                if t >= t0 && t < t1 {
                    0.9 * (2.0 * PI * 0.5 * t).sin()
                } else {
                    0.0
                }
            };
            base + flap(50_000.0, 100_000.0, t) + flap(160_000.0, 210_000.0, t)
        };
        let run = |memory: bool| {
            let mut source = FunctionSource::new(flappy);
            let mut ctl = AdaptiveSampler::new(AdaptiveConfig {
                initial_rate: Hertz(0.05),
                min_rate: Hertz(1e-4),
                max_rate: Hertz(64.0),
                epoch: Seconds(5000.0),
                memory,
                ..AdaptiveConfig::default()
            });
            ctl.run(&mut source, Seconds(250_000.0))
        };
        let with_memory = run(true);
        let without_memory = run(false);
        // Count probe (aliased) epochs during the *second* flap.
        let probes = |reports: &[EpochReport]| {
            reports
                .iter()
                .filter(|r| r.start.value() >= 160_000.0 && r.start.value() < 210_000.0)
                .filter(|r| r.aliased)
                .count()
        };
        let with_count = probes(&with_memory);
        let without_count = probes(&without_memory);
        assert!(
            with_count < without_count,
            "memory ({with_count} probe epochs) must re-ramp faster than \
             no-memory ({without_count})"
        );
        // And memory should reach a non-aliased epoch during the second flap.
        assert!(with_memory
            .iter()
            .any(|r| r.start.value() >= 160_000.0 && r.start.value() < 210_000.0 && !r.aliased));
    }

    #[test]
    fn headroom_floor_enforced() {
        let ctl = AdaptiveSampler::new(AdaptiveConfig {
            headroom: 1.0,
            ..AdaptiveConfig::default()
        });
        assert!(ctl.config.headroom >= MIN_VERIFY_HEADROOM);
    }

    #[test]
    fn epoch_window_extends_for_slow_rates() {
        let mut source = FunctionSource::new(|t: f64| (2.0 * PI * 1e-4 * t).sin());
        let mut ctl = AdaptiveSampler::new(AdaptiveConfig {
            initial_rate: Hertz(0.001),
            min_rate: Hertz(1e-6),
            max_rate: Hertz(1.0),
            epoch: Seconds(10.0), // nominal epoch is far too short
            ..AdaptiveConfig::default()
        });
        let r = ctl.step(&mut source, Seconds::ZERO);
        // Companion rate ≈ 0.000618 → 64 samples need ≥ ~103k s.
        assert!(r.duration.value() >= 64.0 / r.secondary_rate.value() * 0.99);
        assert!(r.samples_taken >= 64);
    }

    #[test]
    fn cost_accounting_sums_epochs() {
        let mut source = FunctionSource::new(|t: f64| (2.0 * PI * 0.01 * t).sin());
        let mut ctl = AdaptiveSampler::new(config(1.0, 1000.0));
        let reports = ctl.run(&mut source, Seconds(5000.0));
        let total = total_samples(&reports);
        assert_eq!(
            total,
            reports.iter().map(|r| r.samples_taken).sum::<usize>()
        );
        assert!(total > 0);
    }

    #[test]
    #[should_panic(expected = "probe_multiplier")]
    fn bad_multiplier_panics() {
        AdaptiveSampler::new(AdaptiveConfig {
            probe_multiplier: 1.0,
            ..AdaptiveConfig::default()
        });
    }
}
