//! Property-based tests for the core algorithms.

use proptest::prelude::*;
use std::f64::consts::PI;
use sweetspot_core::aliasing::{companion_rate, ratio_is_valid};
use sweetspot_core::estimator::{NyquistConfig, NyquistEstimator};
use sweetspot_core::reconstruct::{decimation_factor, roundtrip, ReconstructionConfig};
use sweetspot_core::reduction::{reduction_outcome, PairClass};
use sweetspot_core::NyquistEstimate;
use sweetspot_dsp::fft::FftPlanner;
use sweetspot_timeseries::{Hertz, RegularSeries, Seconds};

/// Strategy: a small set of tones with frequencies within (0, 0.4) cycles
/// per sample and positive amplitudes.
fn tones_strategy() -> impl Strategy<Value = Vec<(f64, f64)>> {
    prop::collection::vec((0.002f64..0.4, 0.1f64..2.0), 1..5)
}

fn series_of(tones: &[(f64, f64)], n: usize) -> RegularSeries {
    let values: Vec<f64> = (0..n)
        .map(|i| {
            let t = i as f64;
            tones
                .iter()
                .map(|&(f, a)| a * (2.0 * PI * f * t).sin())
                .sum()
        })
        .collect();
    RegularSeries::new(Seconds::ZERO, Seconds(1.0), values)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn estimate_never_exceeds_sampling_rate(tones in tones_strategy()) {
        let mut est = NyquistEstimator::new(NyquistConfig::default());
        let s = series_of(&tones, 1024);
        if let NyquistEstimate::Rate(r) = est.estimate_series(&s) {
            prop_assert!(r.value() <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn estimate_monotone_in_cutoff(tones in tones_strategy()) {
        // Restricted to the realistic cutoff range (the paper uses 0.99 and
        // 0.9999): below ~0.9 the aliased-guard threshold scales down with
        // the cutoff and the verdicts are not comparable across cutoffs.
        let s = series_of(&tones, 1024);
        let mut prev = 0.0;
        let mut prev_aliased = false;
        for cutoff in [0.9, 0.99, 0.999, 0.9999] {
            let mut est = NyquistEstimator::new(NyquistConfig {
                energy_cutoff: cutoff,
                ..NyquistConfig::default()
            });
            match est.estimate_series(&s) {
                NyquistEstimate::Rate(r) => {
                    prop_assert!(!prev_aliased, "aliased at lower cutoff, rate at higher");
                    prop_assert!(r.value() >= prev - 1e-9);
                    prev = r.value();
                }
                NyquistEstimate::Aliased => {
                    prev_aliased = true;
                }
            }
        }
    }

    #[test]
    fn estimate_invariant_to_amplitude_scaling(
        tones in tones_strategy(),
        scale in 0.1f64..100.0,
    ) {
        let mut est = NyquistEstimator::new(NyquistConfig::default());
        let s = series_of(&tones, 1024);
        let scaled = RegularSeries::new(
            Seconds::ZERO,
            Seconds(1.0),
            s.values().iter().map(|v| v * scale).collect(),
        );
        let a = est.estimate_series(&s);
        let b = est.estimate_series(&scaled);
        match (a, b) {
            (NyquistEstimate::Rate(x), NyquistEstimate::Rate(y)) => {
                prop_assert!((x.value() - y.value()).abs() < 1e-9);
            }
            (NyquistEstimate::Aliased, NyquistEstimate::Aliased) => {}
            other => prop_assert!(false, "scaling changed the verdict: {other:?}"),
        }
    }

    #[test]
    fn estimate_invariant_to_dc_offset(
        tones in tones_strategy(),
        offset in -1e4f64..1e4,
    ) {
        let mut est = NyquistEstimator::new(NyquistConfig::default());
        let s = series_of(&tones, 1024);
        let shifted = RegularSeries::new(
            Seconds::ZERO,
            Seconds(1.0),
            s.values().iter().map(|v| v + offset).collect(),
        );
        let a = est.estimate_series(&s);
        let b = est.estimate_series(&shifted);
        match (a, b) {
            (NyquistEstimate::Rate(x), NyquistEstimate::Rate(y)) => {
                prop_assert!((x.value() - y.value()).abs() < 1e-9);
            }
            (NyquistEstimate::Aliased, NyquistEstimate::Aliased) => {}
            other => prop_assert!(false, "offset changed the verdict: {other:?}"),
        }
    }

    #[test]
    fn roundtrip_above_true_nyquist_is_faithful(
        edge_idx in 1usize..6,
        n_pow in 9u32..12,
    ) {
        let n = 1usize << n_pow;
        // Bin-aligned band edge so the trace is periodic: no edge caveats.
        let edge = edge_idx as f64 * 8.0 / n as f64;
        let tones = [(edge * 0.3, 1.0), (edge, 0.5)];
        let s = series_of(&tones, n);
        let mut planner = FftPlanner::new();
        let (_, report) = roundtrip(
            &mut planner,
            &s,
            Hertz(edge * 2.0 * 1.3),
            ReconstructionConfig::default(),
        );
        prop_assert!(
            report.interior_nrmse < 0.02,
            "interior NRMSE {} factor {}",
            report.interior_nrmse,
            report.factor
        );
    }

    #[test]
    fn decimation_factor_is_safe(orig in 0.001f64..100.0, target in 0.001f64..100.0) {
        let f = decimation_factor(Hertz(orig), Hertz(target));
        prop_assert!(f >= 1);
        // The decimated rate never drops below the requested target.
        let decimated = orig / f as f64;
        prop_assert!(decimated >= target.min(orig) - 1e-12);
    }

    #[test]
    fn companion_rate_always_valid(rate in 1e-6f64..1e3) {
        let primary = Hertz(rate);
        let secondary = companion_rate(primary);
        prop_assert!(ratio_is_valid(primary, secondary));
        prop_assert!(secondary.value() < primary.value());
    }

    #[test]
    fn reduction_outcome_classification(actual in 1e-4f64..10.0, nyq in 1e-4f64..10.0) {
        let o = reduction_outcome(Hertz(actual), NyquistEstimate::Rate(Hertz(nyq)));
        let ratio = o.ratio.unwrap();
        prop_assert!((ratio - actual / nyq).abs() < 1e-9 * ratio.abs().max(1.0));
        if ratio >= 1.0 {
            prop_assert_eq!(o.class, PairClass::Oversampled);
        } else {
            prop_assert_eq!(o.class, PairClass::Undersampled);
        }
    }
}
