//! Validation of the paper's algorithms against *known* ground truth.
//!
//! The synthetic telemetry generator constructs signals whose band edge is
//! known exactly (DESIGN.md §2), which turns the paper's informal claims
//! into checkable statements: the §3.2 estimator must land near (and never
//! meaningfully above) the true Nyquist rate, reconstruction at the
//! estimated rate must be faithful, and the §4.1 detector must separate
//! well-sampled from under-sampled devices.

use sweetspot_core::aliasing::{companion_rate, detect_aliasing, DualRateConfig};
use sweetspot_core::estimator::{NyquistConfig, NyquistEstimator};
use sweetspot_core::reconstruct::{roundtrip, ReconstructionConfig};
use sweetspot_dsp::fft::FftPlanner;
use sweetspot_telemetry::{DeviceTrace, MetricKind, MetricProfile};
use sweetspot_timeseries::{Hertz, Seconds};

fn temperature_device(idx: usize) -> DeviceTrace {
    DeviceTrace::synthesize(MetricProfile::for_kind(MetricKind::Temperature), idx, 0xBEEF)
}

#[test]
fn estimator_bounded_by_true_nyquist_on_ground_truth() {
    let mut est = NyquistEstimator::new(NyquistConfig::default());
    let mut checked = 0;
    for idx in 0..20 {
        let dev = temperature_device(idx);
        if dev.is_undersampled_at_production_rate() {
            continue;
        }
        // Sample ground truth comfortably above the true Nyquist rate over a
        // window long enough to resolve the lowest tones.
        let true_nyq = dev.true_nyquist_rate();
        let fs = Hertz(true_nyq.value() * 8.0);
        let duration = Seconds(4096.0 / fs.value());
        let series = dev.ground_truth(fs, duration);
        let got = est
            .estimate_series(&series)
            .rate()
            .expect("ground truth is band-limited, not aliased");
        // The 99% cutoff may discard weak near-edge tones (that is its job),
        // so the estimate is below the true rate — but never meaningfully
        // above it (above = hallucinating content).
        assert!(
            got.value() <= true_nyq.value() * 1.1,
            "device {idx}: estimate {got} far above true {true_nyq}"
        );
        assert!(
            got.value() >= true_nyq.value() * 0.01,
            "device {idx}: estimate {got} absurdly low vs true {true_nyq}"
        );
        checked += 1;
    }
    assert!(checked >= 10, "only {checked} well-sampled devices checked");
}

#[test]
fn reconstruction_at_estimated_rate_is_faithful() {
    let mut est = NyquistEstimator::new(NyquistConfig::default());
    let mut planner = FftPlanner::new();
    for idx in 0..6 {
        let dev = temperature_device(idx);
        if dev.is_undersampled_at_production_rate() {
            continue;
        }
        let true_nyq = dev.true_nyquist_rate();
        let fs = Hertz(true_nyq.value() * 16.0);
        let duration = Seconds(4096.0 / fs.value());
        let series = dev.ground_truth(fs, duration);
        let est_rate = est.estimate_series(&series).rate().expect("band-limited");
        // Downsample to the *estimated* Nyquist rate (with the paper's
        // margin built into the 99% threshold) and reconstruct.
        let (_, report) = roundtrip(
            &mut planner,
            &series,
            Hertz(est_rate.value() * 1.25),
            ReconstructionConfig::default(),
        );
        // ≤1% of energy was discarded by the cutoff, so interior NRMSE must
        // be small.
        assert!(
            report.interior_nrmse < 0.12,
            "device {idx}: interior NRMSE {} at factor {}",
            report.interior_nrmse,
            report.factor
        );
        assert!(report.factor >= 2, "device {idx}: no reduction achieved");
    }
}

#[test]
fn detector_separates_well_sampled_from_undersampled() {
    let profile = MetricProfile::for_kind(MetricKind::FcsErrors);
    let cfg = DualRateConfig::default();
    let duration = Seconds::from_days(2.0);
    let mut well_checked = 0;
    let mut under_checked = 0;
    let mut well_correct = 0;
    let mut under_correct = 0;
    for idx in 0..40 {
        let dev = DeviceTrace::synthesize(profile, idx, 0xFACE);
        let primary = profile.production_rate();
        let secondary = companion_rate(primary);
        // Ground-truth sampling (no measurement noise) isolates the
        // detector's behaviour from impairment effects.
        let fast = dev.ground_truth(primary, duration);
        let slow = dev.ground_truth(secondary, duration);
        let verdict = detect_aliasing(&fast, &slow, cfg);
        // The secondary stream covers band edges up to primary/(2φ).
        let detectable_edge = secondary.value() / 2.0;
        let edge = dev.true_band_edge().value();
        if edge < detectable_edge * 0.8 {
            well_checked += 1;
            if !verdict.aliased {
                well_correct += 1;
            }
        } else if edge > detectable_edge * 1.5 {
            under_checked += 1;
            if verdict.aliased {
                under_correct += 1;
            }
        }
    }
    assert!(well_checked >= 5 && under_checked >= 2,
        "population too small: {well_checked}/{under_checked}");
    // Detection quality: allow a small error rate on each side.
    assert!(
        well_correct as f64 / well_checked as f64 >= 0.8,
        "false positive rate too high: {well_correct}/{well_checked}"
    );
    assert!(
        under_correct as f64 / under_checked as f64 >= 0.8,
        "false negative rate too high: {under_correct}/{under_checked}"
    );
}

#[test]
fn production_traces_of_undersampled_devices_alias() {
    // The §3.2 estimator applied to the *measured production trace* of a
    // device whose band edge exceeds the folding frequency must either flag
    // aliasing or report a (folded) rate at/near the sampling rate — it can
    // never report the true rate, which is what motivates §4.1.
    let profile = MetricProfile::for_kind(MetricKind::LinkUtil);
    let mut est = NyquistEstimator::new(NyquistConfig::default());
    for idx in 0..60 {
        let dev = DeviceTrace::synthesize(profile, idx, 0xA11A5);
        if !dev.is_undersampled_at_production_rate() {
            continue;
        }
        let series = dev.ground_truth(profile.production_rate(), Seconds::from_days(1.0));
        let est_result = est.estimate_series(&series);
        if let Some(r) = est_result.rate() {
            assert!(
                r.value() < dev.true_nyquist_rate().value(),
                "device {idx}: folded estimate {r} cannot reach true rate {}",
                dev.true_nyquist_rate()
            );
        }
        // (Aliased verdicts are also acceptable — and better.)
    }
}
