//! Vendored, dependency-free stand-in for `criterion`.
//!
//! Implements the slice of the criterion API the `sweetspot-bench` benches
//! use — [`Criterion::bench_function`], [`Bencher::iter`], the builder
//! setters, and the [`criterion_group!`]/[`criterion_main!`] macros — backed
//! by a wall-clock sampling loop with regression-grade summary statistics:
//! every benchmark reports **min / p50 / p95** (plus mean and max) over a
//! configurable number of samples, and emits one machine-readable JSON line
//! (`BENCH_JSON {...}`) so CI can accumulate per-PR trajectories.
//!
//! ## Environment knobs
//!
//! * `BENCH_SAMPLE_SIZE=N` — override the number of timed samples.
//! * `BENCH_WARMUP_MS=N` / `BENCH_MEASURE_MS=N` — override the warm-up and
//!   measurement windows.
//! * `BENCH_QUICK=1` — smoke mode: at most 10 samples, 50 ms warm-up,
//!   300 ms measurement window (what CI's bench-smoke job uses).
//! * `BENCH_JSON_PATH=file` — append each benchmark's JSON line to `file`
//!   in addition to printing it. Prefer an absolute path: cargo runs bench
//!   binaries with the bench package root as working directory, so a
//!   relative path lands under `crates/bench/`, not the workspace root.
//!
//! Statistics are still cruder than real criterion (no outlier rejection,
//! no bootstrap), but timings are real and the bench binaries run unchanged.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use std::io::Write as _;
use std::time::{Duration, Instant};

/// Bench runner and configuration.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets how long to warm up before measuring.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the measurement window per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Real criterion parses CLI flags here; the stub accepts and ignores
    /// them (cargo passes `--bench`) but honors the `BENCH_*` environment
    /// knobs documented at the crate root, so CI can force quick runs
    /// without touching bench code.
    pub fn configure_from_args(mut self) -> Self {
        if std::env::var("BENCH_QUICK").is_ok_and(|v| v == "1") {
            self.sample_size = self.sample_size.min(10);
            self.warm_up_time = Duration::from_millis(50);
            self.measurement_time = Duration::from_millis(300);
        }
        if let Some(n) = env_usize("BENCH_SAMPLE_SIZE") {
            if n > 0 {
                self.sample_size = n;
            }
        }
        if let Some(ms) = env_usize("BENCH_WARMUP_MS") {
            self.warm_up_time = Duration::from_millis(ms as u64);
        }
        if let Some(ms) = env_usize("BENCH_MEASURE_MS") {
            self.measurement_time = Duration::from_millis(ms as u64);
        }
        self
    }

    /// Runs one benchmark: warm-up, then timed samples, then a one-line
    /// min/p50/p95 report plus a `BENCH_JSON` line.
    ///
    /// Like real criterion, each sample runs the benched closure in a batch
    /// of iterations sized during warm-up so one sample lasts roughly
    /// `measurement_time / sample_size` — per-sample setup done in the
    /// `|b|` closure (planner construction, input cloning) amortizes away
    /// instead of polluting every sample.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            timed: Duration::ZERO,
            iters: 0,
            batch: 1,
        };

        // Warm-up: run until the warm-up budget is spent, estimating the
        // per-iteration cost from the fastest observed call.
        let warm_start = Instant::now();
        let mut est = f64::INFINITY;
        while warm_start.elapsed() < self.warm_up_time {
            b.timed = Duration::ZERO;
            b.iters = 0;
            f(&mut b);
            if b.iters > 0 {
                est = est.min(b.timed.as_secs_f64() / b.iters as f64);
            }
        }

        // Size each sample's batch so the measurement window is spent evenly
        // across `sample_size` samples.
        let target = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        b.batch = if est.is_finite() && est > 0.0 {
            (target / est).ceil().clamp(1.0, 1e7) as u64
        } else {
            1
        };

        // Measurement: `sample_size` samples, each a fresh call into the
        // closure, bounded overall by `measurement_time`.
        let mut samples = Vec::with_capacity(self.sample_size);
        let run_start = Instant::now();
        for _ in 0..self.sample_size {
            b.timed = Duration::ZERO;
            b.iters = 0;
            f(&mut b);
            if b.iters > 0 {
                samples.push(b.timed.as_secs_f64() / b.iters as f64);
            }
            if run_start.elapsed() > self.measurement_time {
                break;
            }
        }

        if samples.is_empty() {
            println!("{id:<40} (no iterations recorded)");
            return self;
        }
        let stats = SampleStats::of(&mut samples);
        println!(
            "{id:<40} time: [{} {} {}]  mean {}  ({} samples)",
            format_time(stats.min),
            format_time(stats.p50),
            format_time(stats.p95),
            format_time(stats.mean),
            stats.samples
        );
        let json = stats.to_json(id);
        println!("BENCH_JSON {json}");
        if let Ok(path) = std::env::var("BENCH_JSON_PATH") {
            if !path.is_empty() {
                if let Err(e) = append_line(&path, &json) {
                    eprintln!("warning: cannot append to {path}: {e}");
                }
            }
        }
        self
    }

    /// Prints the closing summary (a no-op in the stub).
    pub fn final_summary(&self) {}
}

/// Summary statistics over one benchmark's per-iteration samples (seconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleStats {
    /// Number of samples collected.
    pub samples: usize,
    /// Fastest sample.
    pub min: f64,
    /// Median sample.
    pub p50: f64,
    /// 95th-percentile sample.
    pub p95: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Slowest sample.
    pub max: f64,
}

impl SampleStats {
    /// Computes the summary; sorts `samples` in place.
    ///
    /// # Panics
    /// Panics if `samples` is empty.
    pub fn of(samples: &mut [f64]) -> SampleStats {
        assert!(!samples.is_empty(), "need at least one sample");
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let n = samples.len();
        let nearest = |q: f64| samples[(((n - 1) as f64) * q).round() as usize];
        SampleStats {
            samples: n,
            min: samples[0],
            p50: nearest(0.5),
            p95: nearest(0.95),
            mean: samples.iter().sum::<f64>() / n as f64,
            max: samples[n - 1],
        }
    }

    /// One-line JSON record (hand-rolled: the vendored stub has no serde).
    pub fn to_json(&self, id: &str) -> String {
        format!(
            "{{\"benchmark\":\"{}\",\"unit\":\"seconds\",\"samples\":{},\
             \"min\":{:e},\"p50\":{:e},\"p95\":{:e},\"mean\":{:e},\"max\":{:e}}}",
            json_escape(id),
            self.samples,
            self.min,
            self.p50,
            self.p95,
            self.mean,
            self.max
        )
    }
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.parse().ok()
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if c.is_control() => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn append_line(path: &str, line: &str) -> std::io::Result<()> {
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    writeln!(file, "{line}")
}

/// Times the closure handed to [`Criterion::bench_function`].
#[derive(Debug)]
pub struct Bencher {
    timed: Duration,
    iters: u64,
    /// Iterations per sample, calibrated by the runner during warm-up.
    batch: u64,
}

impl Bencher {
    /// Times `batch` calls of `f` (calibrated by the runner), accumulating
    /// into the current sample.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        let batch = self.batch.max(1);
        let start = Instant::now();
        for _ in 0..batch {
            std::hint::black_box(f());
        }
        self.timed += start.elapsed();
        self.iters += batch;
    }
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.4} s")
    } else if seconds >= 1e-3 {
        format!("{:.4} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.4} µs", seconds * 1e6)
    } else {
        format!("{:.4} ns", seconds * 1e9)
    }
}

/// Declares a bench group: `criterion_group!(name = g; config = expr;
/// targets = f1, f2)` or the positional `criterion_group!(g, f1, f2)` form.
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default().configure_from_args();
            targets = $($target),+
        }
    };
}

/// Declares a `main` that runs bench groups in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::Criterion::default().configure_from_args().final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes the tests that touch process environment variables:
    /// `set_var`/`remove_var` racing a concurrent `getenv` (e.g.
    /// `bench_function` reading `BENCH_JSON_PATH` on another test thread)
    /// is undefined behavior on glibc.
    static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn bench_function_runs_and_reports() {
        let _env = ENV_LOCK.lock().unwrap();
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(20));
        let mut calls = 0u64;
        c.bench_function("smoke", |b| b.iter(|| calls += 1));
        assert!(calls > 0, "the closure must actually run");
        c.final_summary();
    }

    #[test]
    fn time_formatting_covers_scales() {
        assert!(format_time(2.0).ends_with(" s"));
        assert!(format_time(2e-3).ends_with(" ms"));
        assert!(format_time(2e-6).ends_with(" µs"));
        assert!(format_time(2e-9).ends_with(" ns"));
    }

    #[test]
    fn sample_stats_are_ordered_percentiles() {
        let mut samples: Vec<f64> = (1..=100).rev().map(|i| i as f64).collect();
        let s = SampleStats::of(&mut samples);
        assert_eq!(s.samples, 100);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!(s.min <= s.p50 && s.p50 <= s.p95 && s.p95 <= s.max);
        assert_eq!(s.p50, 51.0); // nearest-rank: index round(99·0.5) = 50
        assert_eq!(s.p95, 95.0); // index round(99·0.95) = 94
        assert!((s.mean - 50.5).abs() < 1e-12);
    }

    #[test]
    fn single_sample_stats_collapse() {
        let mut samples = vec![0.25];
        let s = SampleStats::of(&mut samples);
        assert_eq!(s.min, 0.25);
        assert_eq!(s.p50, 0.25);
        assert_eq!(s.p95, 0.25);
        assert_eq!(s.max, 0.25);
    }

    #[test]
    fn json_line_is_well_formed() {
        let mut samples = vec![2e-6, 1e-6, 3e-6];
        let s = SampleStats::of(&mut samples);
        let json = s.to_json("fft/radix2_1024");
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"benchmark\":\"fft/radix2_1024\""));
        assert!(json.contains("\"samples\":3"));
        assert!(json.contains("\"min\":1e-6"));
        // Quotes and backslashes in ids must be escaped.
        let tricky = s.to_json("a\"b\\c");
        assert!(tricky.contains("a\\\"b\\\\c"));
    }

    #[test]
    fn quick_mode_shrinks_configuration() {
        // `configure_from_args` reads the env; make the test hermetic by
        // clearing every knob it honors and restoring them afterwards.
        let _env = ENV_LOCK.lock().unwrap();
        let knobs = ["BENCH_QUICK", "BENCH_SAMPLE_SIZE", "BENCH_WARMUP_MS", "BENCH_MEASURE_MS"];
        let saved: Vec<Option<String>> = knobs.iter().map(|k| std::env::var(k).ok()).collect();
        for k in &knobs {
            std::env::remove_var(k);
        }
        std::env::set_var("BENCH_QUICK", "1");
        let c = Criterion::default().configure_from_args();
        for (k, v) in knobs.iter().zip(saved) {
            match v {
                Some(v) => std::env::set_var(k, v),
                None => std::env::remove_var(k),
            }
        }
        assert!(c.sample_size <= 10);
        assert!(c.warm_up_time <= Duration::from_millis(50));
        assert!(c.measurement_time <= Duration::from_millis(300));
    }
}
