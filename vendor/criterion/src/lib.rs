//! Vendored, dependency-free stand-in for `criterion`.
//!
//! Implements the slice of the criterion API the `sweetspot-bench` benches
//! use — [`Criterion::bench_function`], [`Bencher::iter`], the builder
//! setters, and the [`criterion_group!`]/[`criterion_main!`] macros — backed
//! by a simple mean-of-wall-clock measurement loop. Statistics are far
//! cruder than real criterion (no outlier rejection, no regression), but
//! timings are real and the bench binaries run unchanged.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use std::time::{Duration, Instant};

/// Bench runner and configuration.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets how long to warm up before measuring.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the measurement window per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Real criterion parses CLI flags here; the stub accepts and ignores
    /// them (cargo passes `--bench`).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs one benchmark: warm-up, then timed samples, then a one-line
    /// mean/min/max report.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { timed: Duration::ZERO, iters: 0 };

        // Warm-up: run until the warm-up budget is spent.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up_time {
            f(&mut b);
        }

        // Measurement: `sample_size` samples, each a fresh call into the
        // closure, bounded overall by `measurement_time`.
        let mut samples = Vec::with_capacity(self.sample_size);
        let run_start = Instant::now();
        for _ in 0..self.sample_size {
            b.timed = Duration::ZERO;
            b.iters = 0;
            f(&mut b);
            if b.iters > 0 {
                samples.push(b.timed.as_secs_f64() / b.iters as f64);
            }
            if run_start.elapsed() > self.measurement_time {
                break;
            }
        }

        if samples.is_empty() {
            println!("{id:<40} (no iterations recorded)");
        } else {
            let mean = samples.iter().sum::<f64>() / samples.len() as f64;
            let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = samples.iter().cloned().fold(0.0f64, f64::max);
            println!(
                "{id:<40} time: [{} {} {}]",
                format_time(min),
                format_time(mean),
                format_time(max)
            );
        }
        self
    }

    /// Prints the closing summary (a no-op in the stub).
    pub fn final_summary(&self) {}
}

/// Times the closure handed to [`Criterion::bench_function`].
#[derive(Debug)]
pub struct Bencher {
    timed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times repeated calls of `f`, accumulating into the current sample.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        let out = f();
        self.timed += start.elapsed();
        self.iters += 1;
        drop(out);
    }
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.4} s")
    } else if seconds >= 1e-3 {
        format!("{:.4} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.4} µs", seconds * 1e6)
    } else {
        format!("{:.4} ns", seconds * 1e9)
    }
}

/// Declares a bench group: `criterion_group!(name = g; config = expr;
/// targets = f1, f2)` or the positional `criterion_group!(g, f1, f2)` form.
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default().configure_from_args();
            targets = $($target),+
        }
    };
}

/// Declares a `main` that runs bench groups in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::Criterion::default().configure_from_args().final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(20))
            .configure_from_args();
        let mut calls = 0u64;
        c.bench_function("smoke", |b| b.iter(|| calls += 1));
        assert!(calls > 0, "the closure must actually run");
        c.final_summary();
    }

    #[test]
    fn time_formatting_covers_scales() {
        assert!(format_time(2.0).ends_with(" s"));
        assert!(format_time(2e-3).ends_with(" ms"));
        assert!(format_time(2e-6).ends_with(" µs"));
        assert!(format_time(2e-9).ends_with(" ns"));
    }
}
