//! Vendored, dependency-free stand-in for `proptest`.
//!
//! The build container cannot reach a crates registry, so this crate
//! implements the subset of proptest the workspace's property tests use:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(N))]` header,
//! * [`Strategy`] for ranges, tuples of strategies, [`Strategy::prop_map`],
//!   and [`collection::vec`],
//! * [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Unlike real proptest there is **no shrinking**: a failing case reports the
//! generated inputs (via the assertion message) and the deterministic
//! per-test seed, which is enough to reproduce since case generation is a
//! pure function of the test name and case index.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Runner configuration: how many random cases each property runs.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Derives the deterministic RNG for one case of one named property.
///
/// Public because the [`proptest!`] expansion calls it; not part of the real
/// proptest API.
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    // FNV-1a over the test name, mixed with the case index.
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// A generator of random values — the no-shrinking core of proptest's trait.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

impl<T: rand::SampleUniform + Copy> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut StdRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        // Closed-interval sampling: scale a [0,1) draw up to and including hi.
        lo + rng.gen_range(0.0..1.0 + f64::EPSILON).min(1.0) * (hi - lo)
    }
}

macro_rules! impl_strategy_for_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_strategy_for_tuple!(A: 0);
impl_strategy_for_tuple!(A: 0, B: 1);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3);

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, StdRng};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec`s with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates `Vec`s of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Mirrors proptest's `prop::` facade module.
pub mod prop {
    pub use crate::collection;
}

/// The glob-importable prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        case_rng, collection, prop, prop_assert, prop_assert_eq, proptest, Map, ProptestConfig,
        Strategy,
    };
}

/// Asserts a property holds; accepts an optional format message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: expands one test fn at a time.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat in $strategy:expr),* $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::case_rng(stringify!($name), __case);
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut __rng);)*
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in -5.0f64..5.0, n in 1usize..10) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vec_strategy_respects_len(v in prop::collection::vec(0f64..1.0, 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn prop_map_applies(v in (0f64..1.0, 1f64..2.0).prop_map(|(a, b)| a + b)) {
            prop_assert!((0.0..3.0).contains(&v));
        }

        #[test]
        fn inclusive_range_hits_bounds(p in 0.0f64..=100.0) {
            prop_assert!((0.0..=100.0).contains(&p));
        }
    }

    #[test]
    fn case_rng_is_deterministic_per_name_and_case() {
        use rand::RngCore;
        assert_eq!(case_rng("t", 3).next_u64(), case_rng("t", 3).next_u64());
        assert_ne!(case_rng("t", 3).next_u64(), case_rng("t", 4).next_u64());
        assert_ne!(case_rng("a", 0).next_u64(), case_rng("b", 0).next_u64());
    }
}
