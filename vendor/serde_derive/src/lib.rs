//! Vendored, dependency-free stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types so they
//! are ready for a real serde once a registry is reachable, but nothing in
//! the tree actually serializes through serde today (CSV ingest is
//! hand-rolled). These derives therefore accept the same syntax — including
//! `#[serde(...)]` helper attributes — and expand to nothing.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and `#[serde(...)]` attrs; expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and `#[serde(...)]` attrs; expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
