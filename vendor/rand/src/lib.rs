//! Vendored, dependency-free stand-in for the `rand` crate.
//!
//! The build container has no network access to a crates registry, so this
//! workspace vendors the small `rand` API surface it actually uses:
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over float/integer
//! ranges, and [`Rng::gen_bool`]. [`rngs::StdRng`] is a xoshiro256++
//! generator seeded through SplitMix64 — deterministic for a given seed on
//! every platform and thread count, which the fleet study's bit-identical
//! sharding guarantee relies on.
//!
//! This is **not** the real `rand` crate: the stream differs from upstream
//! `StdRng` (ChaCha12), and only the subset below is implemented.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use std::ops::Range;

/// A random number generator: the single-method core other traits build on.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed random bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, &range)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not within `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} not in [0,1]");
        next_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A uniform f64 in `[0, 1)` with 53 random mantissa bits.
fn next_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types that [`Rng::gen_range`] can sample uniformly from a half-open range.
pub trait SampleUniform: Sized {
    /// Draws one sample from `range`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: &Range<Self>) -> Self;
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: &Range<f64>) -> f64 {
        assert!(range.start < range.end, "empty gen_range {:?}", range);
        let span = range.end - range.start;
        let v = range.start + next_f64(rng) * span;
        // Guard against round-up to the excluded endpoint.
        if v >= range.end {
            range.start
        } else {
            v
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: &Range<$t>) -> $t {
                assert!(range.start < range.end, "empty gen_range {:?}", range);
                // Widen through i128 so signed spans wider than half the type
                // (e.g. -100i8..100) stay positive instead of sign-extending
                // into a bogus huge u64.
                let span = ((range.end as i128) - (range.start as i128)) as u128;
                // Multiply-shift rejection-free mapping is fine for test-scale
                // spans; bias is < 2^-32 for spans below 2^32.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as u64;
                range.start.wrapping_add(hi as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// RNGs constructible from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_f64_within_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(-3.0..7.0);
            assert!((-3.0..7.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_int_within_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.gen_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_range_signed_spans_wider_than_half_the_type() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..2_000 {
            let v = rng.gen_range(-100i8..100);
            assert!((-100..100).contains(&v), "{v}");
            let w = rng.gen_range(i64::MIN / 2..i64::MAX / 2);
            assert!((i64::MIN / 2..i64::MAX / 2).contains(&w), "{w}");
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "{hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn f64_samples_look_uniform() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 20_000;
        let mean: f64 =
            (0..n).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
