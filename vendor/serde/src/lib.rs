//! Vendored, dependency-free stand-in for `serde`.
//!
//! Re-exports the no-op `Serialize`/`Deserialize` derives from the vendored
//! [`serde_derive`] so `use serde::{Deserialize, Serialize};` plus
//! `#[derive(...)]` compiles unchanged. See `vendor/serde_derive` for why
//! this is sufficient for the workspace today.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};
