//! `sweetspot` — the command-line interface.
//!
//! ```text
//! sweetspot analyze <trace.csv> [--cutoff F] [--headroom F] [--interval SECONDS]
//!     Estimate a trace's Nyquist rate and print a sampling recommendation.
//!     The CSV is `time_seconds,value` (header optional, `nan` = lost sample).
//!
//! sweetspot track <trace.csv> [--window SECONDS] [--step SECONDS]
//!     Moving-window Nyquist tracking (the paper's Figure 7) over a trace.
//!
//! sweetspot study [--devices N] [--seed S] [--threads T] [--paper-scale] [--timing] [--json]
//!     Run the §3.2 fleet study on the synthetic fleet and print Figure 1
//!     plus the headline statistics. `--threads 0` (the default) uses all
//!     available cores; any thread count produces byte-identical output.
//!     `--paper-scale` analyzes the paper's full 1613 metric-device pairs
//!     (115 devices/metric + 3 extras; overrides `--devices`). `--timing`
//!     prints the synthesis/clean/estimate wall-clock split to stderr.
//!     `--json` emits the results as JSON on stdout instead of tables.
//!
//! sweetspot fleetsim [--budget X] [--policy P] [--days D] [--devices N] [--seed S]
//!                    [--threads T] [--verify-every K] [--fft-cache-mb M]
//!                    [--scenario NAME|SPEC] [--scenario-seed S]
//!                    [--recovery-budget-frac F]
//!                    [--metrics-out PATH] [--metrics-every K]
//!                    [--paper-scale] [--timing] [--json] [--json-devices]
//!     Fleet-level adaptive simulation: every device's §4.2 controller under
//!     one shared collection budget, with a cross-device scheduler deciding
//!     epoch-by-epoch poll rates. Defaults to the paper-scale 1613-pair
//!     fleet (`--paper-scale` says so explicitly; `--devices N` simulates a
//!     fleet of exactly N metric-device pairs instead, tiling the 14-metric
//!     population round-robin — any N from a handful to 10⁵+; combining the
//!     two is an error). Without `--budget` it sweeps a budget ladder and
//!     prints the cost-vs-quality frontier per policy; with `--budget X`
//!     (cost units/epoch) it runs one point. `--policy` picks one of
//!     uncapped|uniform|fair|waterfill (default: all). `--verify-every K`
//!     runs §4.1 dual-rate verification on settled devices every K-th epoch
//!     instead of continuously (probes always verify; anomalies pull
//!     verification forward; default 1 = continuous). `--fft-cache-mb M`
//!     caps the FFT plan-table caches at M MiB total (0 = unbounded;
//!     default 6144) — eviction rebuilds tables bit-identically, so the cap
//!     trades setup time for memory, never output. `--scenario` injects
//!     fleet lifecycle failures: preset names `churn`, `incident`,
//!     `lossy-reports`, `cost-skew` compose with `+` (e.g.
//!     `churn+lossy-reports`) and `key=value` terms override fields
//!     (`drop=0.1+reboot=0.01`); `--scenario-seed S` re-deals the fault
//!     schedule. Scenario runs report degraded frontiers (plus incident
//!     time-to-recover p50/p95); `--scenario none` (the default) is inert.
//!     `--recovery-budget-frac F` arms the fleet watchdog: each epoch a
//!     bounded recovery slice (F × the fleet's capacity rate, on top of the
//!     regular schedule) funds exponential-backoff re-probes of devices the
//!     health classifier marks suspect-deadlocked, so a controller trapped
//!     by an aliasing deadlock is walked back above its remembered rate
//!     instead of staying silent forever. F = 0 (the default) disables the
//!     watchdog and is bit-identical to the pre-watchdog engine. Output
//!     is byte-identical for any `--threads T`. `--metrics-out PATH`
//!     streams fleet-scope metrics as JSON lines: one epoch snapshot per
//!     simulated epoch (controller actions, scheduler maintenance, FFT
//!     plan-cache hits, grant-distribution quantiles, the shared-budget
//!     ledger) plus flight-recorder event lines (probes, raises, cuts,
//!     scenario faults). The file is byte-identical for any `--threads T`,
//!     and recording never changes stdout. `--metrics-every K` thins
//!     snapshots to every K-th epoch (events and the final epoch always
//!     land). `--json-devices` implies `--json` and adds per-device records
//!     (final rate, mean coverage, deferred/missed epochs) to each frontier
//!     row. `--timing` also reports the member/scratch/fft-table memory
//!     split and (on Linux) the process peak RSS.
//!
//! sweetspot demo [--metric NAME] [--days D] [--seed S]
//!     Emit a synthetic production trace as CSV on stdout (pipe it back
//!     into `analyze` to try the tool without real data).
//! ```
//!
//! Argument parsing is deliberately dependency-free: flags are
//! `--name value` pairs after the positional arguments. Unknown flags are
//! rejected with a diagnostic and a nonzero exit.

use std::process::ExitCode;
use sweetspot::analysis::experiments::{fig1, headline};
use sweetspot::analysis::fleetsim::{
    self, scenario::ScenarioSpec, scheduler::SchedulerPolicy, FleetSimConfig,
};
use sweetspot::analysis::report::json::{JsonArray, JsonObject};
use sweetspot::analysis::study::{FleetStudy, StudyConfig};
use sweetspot::core::recommend::{recommend, Action, RecommendConfig};
use sweetspot::core::tracker::{summarize, track, TrackerConfig};
use sweetspot::prelude::*;
use sweetspot::timeseries::clean::{clean, CleanConfig};
use sweetspot::timeseries::ingest;

/// Pins glibc's mmap threshold so evicted FFT plan tables return to the OS.
///
/// glibc's threshold is adaptive: the first time a freed mmap'd block is
/// seen it ratchets the threshold toward that size (up to 32 MiB), after
/// which multi-megabyte allocations are carved from the main arena instead
/// — and arena pages freed below the heap top are never returned to the
/// kernel. A 10⁵-device uncapped fleetsim churns tens of GB of Bluestein
/// tables through the byte-budgeted plan cache, so without this pin the
/// LRU eviction frees memory that stays resident and peak RSS barely
/// drops. 128 KiB is glibc's static default: small control allocations
/// stay in the arena, every plan table gets a private mmap whose pages
/// `munmap` hands straight back. Affects memory only, never output.
/// No-op on non-glibc targets.
#[cfg(all(target_os = "linux", target_env = "gnu"))]
fn pin_malloc_mmap_threshold() {
    /// `M_MMAP_THRESHOLD` from glibc's `malloc.h`.
    const M_MMAP_THRESHOLD: i32 = -3;
    extern "C" {
        fn mallopt(param: i32, value: i32) -> i32;
    }
    // SAFETY: mallopt is async-signal-unsafe but we call it before any
    // other thread exists; both arguments are plain integers.
    unsafe {
        mallopt(M_MMAP_THRESHOLD, 128 * 1024);
    }
}

#[cfg(not(all(target_os = "linux", target_env = "gnu")))]
fn pin_malloc_mmap_threshold() {}

fn main() -> ExitCode {
    pin_malloc_mmap_threshold();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "analyze" => cmd_analyze(&args[1..]),
        "track" => cmd_track(&args[1..]),
        "study" => cmd_study(&args[1..]),
        "fleetsim" => cmd_fleetsim(&args[1..]),
        "demo" => cmd_demo(&args[1..]),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
sweetspot — Nyquist-guided monitoring-rate analysis (HotNets'21 reproduction)

USAGE:
  sweetspot analyze  <trace.csv> [--cutoff F] [--headroom F] [--interval SECONDS]
  sweetspot track    <trace.csv> [--window SECONDS] [--step SECONDS]
  sweetspot study    [--devices N] [--seed S] [--threads T] [--paper-scale] [--timing] [--json]
  sweetspot fleetsim [--budget X] [--policy uncapped|uniform|fair|waterfill] [--days D]
                     [--devices N] [--seed S] [--threads T] [--verify-every K]
                     [--fft-cache-mb M] [--scenario NAME|SPEC] [--scenario-seed S]
                     [--recovery-budget-frac F]
                     [--metrics-out PATH] [--metrics-every K]
                     [--paper-scale] [--timing] [--json] [--json-devices]
  sweetspot demo     [--metric NAME] [--days D] [--seed S]
  sweetspot help";

/// Rejects flags no command knows about: a typo must fail loudly, not
/// silently fall back to a default.
fn reject_unknown_flags(
    flags: &[(String, String)],
    known: &[&str],
    command: &str,
) -> Result<(), String> {
    for (name, _) in flags {
        if !known.contains(&name.as_str()) {
            let mut valid: Vec<String> = known.iter().map(|k| format!("--{k}")).collect();
            valid.sort();
            return Err(format!(
                "unknown flag --{name} for `sweetspot {command}` (valid: {})",
                valid.join(", ")
            ));
        }
    }
    Ok(())
}

/// Parses `--name value` flag pairs after `positional` leading arguments.
fn flags(args: &[String], positional: usize) -> Result<Vec<(String, String)>, String> {
    let rest = &args[positional..];
    if !rest.len().is_multiple_of(2) {
        return Err("flags must come in `--name value` pairs".into());
    }
    rest.chunks(2)
        .map(|pair| {
            let name = pair[0]
                .strip_prefix("--")
                .ok_or_else(|| format!("expected a --flag, got {:?}", pair[0]))?;
            Ok((name.to_string(), pair[1].clone()))
        })
        .collect()
}

fn flag_f64(flags: &[(String, String)], name: &str, default: f64) -> Result<f64, String> {
    match flags.iter().find(|(n, _)| n == name) {
        Some((_, v)) => v.parse().map_err(|_| format!("--{name} wants a number, got {v:?}")),
        None => Ok(default),
    }
}

fn flag_u64(flags: &[(String, String)], name: &str, default: u64) -> Result<u64, String> {
    match flags.iter().find(|(n, _)| n == name) {
        Some((_, v)) => v.parse().map_err(|_| format!("--{name} wants an integer, got {v:?}")),
        None => Ok(default),
    }
}

/// Parses an *optional* `--name value` flag (no default): `Ok(None)` when
/// absent, a parse diagnostic mentioning `what` when malformed.
fn flag_opt<T: std::str::FromStr>(
    flags: &[(String, String)],
    name: &str,
    what: &str,
) -> Result<Option<T>, String> {
    flags
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| {
            v.parse::<T>()
                .map_err(|_| format!("--{name} wants {what}, got {v:?}"))
        })
        .transpose()
}

fn load_trace(path: &str, interval: Option<f64>) -> Result<RegularSeries, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let raw = ingest::parse_csv(&text).map_err(|e| format!("{path}: {e}"))?;
    if raw.len() < 8 {
        return Err(format!("{path}: only {} usable samples", raw.len()));
    }
    clean(
        &raw,
        CleanConfig {
            interval: interval.map(Seconds),
            outlier_mads: Some(8.0),
        },
    )
    .map_err(|e| format!("{path}: {e}"))
}

fn cmd_analyze(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("analyze needs a trace path")?;
    let flags = flags(args, 1)?;
    reject_unknown_flags(&flags, &["cutoff", "headroom", "interval"], "analyze")?;
    let cutoff = flag_f64(&flags, "cutoff", 0.99)?;
    let headroom = flag_f64(&flags, "headroom", 1.25)?;
    let interval = flags
        .iter()
        .find(|(n, _)| n == "interval")
        .map(|(_, v)| v.parse::<f64>().map_err(|_| "--interval wants seconds".to_string()))
        .transpose()?;

    let series = load_trace(path, interval)?;
    println!(
        "trace: {} samples at {} ({} total)",
        series.len(),
        series.sample_rate(),
        series.duration()
    );
    let rec = recommend(
        &series,
        RecommendConfig {
            estimator: NyquistConfig {
                energy_cutoff: cutoff,
                ..NyquistConfig::default()
            },
            headroom,
            min_change_factor: 2.0,
        },
    );
    match rec.estimated_nyquist {
        Some(rate) => println!("estimated Nyquist rate: {rate}"),
        None => println!("estimated Nyquist rate: none (trace looks aliased)"),
    }
    match rec.action {
        Action::Keep => println!("recommendation: KEEP the current rate"),
        Action::Reduce { to, saving_factor } => println!(
            "recommendation: REDUCE to {to} ({saving_factor:.0}x fewer samples, \
             ≈{:.0} samples/day saved)",
            rec.samples_saved_per_day()
        ),
        Action::Increase { to } => println!(
            "recommendation: INCREASE to at least {to} — the trace is under-sampled \
             (re-run after the change; the folded estimate is a lower bound)"
        ),
        Action::Inspect => println!(
            "recommendation: INSPECT — run a dual-rate probe (§4.1); a single \
             trace cannot assess this signal"
        ),
    }
    Ok(())
}

fn cmd_track(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("track needs a trace path")?;
    let flags = flags(args, 1)?;
    reject_unknown_flags(&flags, &["window", "step"], "track")?;
    let window = flag_f64(&flags, "window", 6.0 * 3600.0)?;
    let step = flag_f64(&flags, "step", 300.0)?;
    let series = load_trace(path, None)?;
    let points = track(
        &series,
        TrackerConfig {
            window: Seconds(window),
            step: Seconds(step),
            estimator: NyquistConfig::default(),
        },
    );
    if points.is_empty() {
        return Err("trace is shorter than one window".into());
    }
    println!("window_start_seconds,nyquist_rate_hz");
    for p in &points {
        match p.estimate.rate() {
            Some(r) => println!("{},{}", p.window_start.value(), r.value()),
            None => println!("{},aliased", p.window_start.value()),
        }
    }
    let s = summarize(&points);
    eprintln!(
        "windows={} aliased={} min={:?} max={:?}",
        s.total_windows,
        s.aliased_windows,
        s.min_rate.map(|r| r.value()),
        s.max_rate.map(|r| r.value())
    );
    Ok(())
}

/// Removes a bare boolean `--name` switch from `args`, returning whether it
/// was present (so the `--name value` pair parser never sees it).
fn take_switch(args: &[String], name: &str) -> (bool, Vec<String>) {
    let mut found = false;
    let rest = args
        .iter()
        .filter(|a| {
            let hit = a.as_str() == name;
            found |= hit;
            !hit
        })
        .cloned()
        .collect();
    (found, rest)
}

fn cmd_study(args: &[String]) -> Result<(), String> {
    let (paper_scale, rest) = take_switch(args, "--paper-scale");
    let (timing, rest) = take_switch(&rest, "--timing");
    let (json, rest) = take_switch(&rest, "--json");
    let flags = flags(&rest, 0)?;
    reject_unknown_flags(&flags, &["devices", "seed", "threads"], "study")?;
    let devices = flag_u64(&flags, "devices", 40)? as usize;
    let seed = flag_u64(&flags, "seed", 0x5EED_CAFE)?;
    let threads = flag_u64(&flags, "threads", 0)? as usize;
    let study = if paper_scale {
        FleetStudy::run_paper_scale(seed, NyquistConfig::default(), threads)
    } else {
        let cfg = StudyConfig {
            fleet: FleetConfig {
                seed,
                devices_per_metric: devices,
                trace_duration: Seconds::from_days(1.0),
            },
            threads,
            ..StudyConfig::default()
        };
        FleetStudy::run(cfg)
    };
    if json {
        println!("{}", study_json(&study));
    } else {
        println!("{}", fig1::from_study(&study).render());
        println!("{}", headline::from_study(&study).render());
    }
    if timing {
        // stderr, not stdout: timing varies run to run, and stdout must stay
        // byte-identical across thread counts (CI compares it verbatim).
        let t = study.timing;
        let total = t.total().as_secs_f64().max(f64::MIN_POSITIVE);
        let pct = |d: std::time::Duration| 100.0 * d.as_secs_f64() / total;
        eprintln!(
            "timing: synthesis {:.3}s ({:.0}%) | clean {:.3}s ({:.0}%) | estimate {:.3}s ({:.0}%) \
             | total {:.3}s across workers over {} pairs",
            t.synthesis.as_secs_f64(),
            pct(t.synthesis),
            t.clean.as_secs_f64(),
            pct(t.clean),
            t.estimate.as_secs_f64(),
            pct(t.estimate),
            t.total().as_secs_f64(),
            study.pairs.len()
        );
    }
    Ok(())
}

/// The `--json` rendering of a fleet study: headline statistics plus the
/// per-metric Figure 1 fractions.
fn study_json(study: &FleetStudy) -> String {
    let f1 = fig1::from_study(study);
    let h = headline::from_study(study);
    let s = &h.summary;
    let mut per_metric = JsonArray::new();
    for (kind, fraction) in &f1.rows {
        let mut row = JsonObject::new();
        row.field_str("metric", kind.name());
        row.field_num("oversampled_fraction", *fraction);
        per_metric.push_raw(&row.finish());
    }
    let mut root = JsonObject::new();
    root.field_num("pairs", s.pairs as f64);
    root.field_num("oversampled_fraction", s.oversampled_fraction);
    root.field_num("undersampled_fraction", s.undersampled_fraction);
    root.field_num("reducible_10x", s.reducible_10x);
    root.field_num("reducible_100x", s.reducible_100x);
    root.field_num("reducible_1000x", s.reducible_1000x);
    match h.temperature_range {
        Some((lo, hi)) => {
            let mut range = JsonArray::new();
            range.push_num(lo).push_num(hi);
            root.field_raw("temperature_nyquist_range_hz", &range.finish());
        }
        None => {
            root.field_null("temperature_nyquist_range_hz");
        }
    }
    root.field_raw("per_metric", &per_metric.finish());
    root.finish()
}

fn cmd_fleetsim(args: &[String]) -> Result<(), String> {
    let (paper_scale, rest) = take_switch(args, "--paper-scale");
    let (timing, rest) = take_switch(&rest, "--timing");
    let (json, rest) = take_switch(&rest, "--json");
    let (json_devices, rest) = take_switch(&rest, "--json-devices");
    // --json-devices is a refinement of --json, not a separate mode.
    let json = json || json_devices;
    let flags = flags(&rest, 0)?;
    reject_unknown_flags(
        &flags,
        &[
            "budget",
            "policy",
            "days",
            "devices",
            "fft-cache-mb",
            "metrics-every",
            "metrics-out",
            "recovery-budget-frac",
            "scenario",
            "scenario-seed",
            "seed",
            "threads",
            "verify-every",
        ],
        "fleetsim",
    )?;
    let days = flag_f64(&flags, "days", 10.0)?;
    if days <= 0.0 {
        return Err("--days must be positive".into());
    }
    let seed = flag_u64(&flags, "seed", 0x5EED_CAFE)?;
    let threads = flag_u64(&flags, "threads", 0)? as usize;
    let verify_every = flag_u64(&flags, "verify-every", 1)? as usize;
    if verify_every == 0 {
        return Err("--verify-every wants a positive epoch count (1 = verify every epoch)".into());
    }
    // Total FFT plan-cache cap in MiB, split across shards; 0 = unbounded.
    // Eviction rebuilds tables bit-identically, so this never changes output.
    let fft_cache_mb = flag_u64(
        &flags,
        "fft-cache-mb",
        (fleetsim::FFT_TABLE_BUDGET_DEFAULT >> 20) as u64,
    )? as usize;
    let fft_table_budget = (fft_cache_mb > 0).then_some(fft_cache_mb << 20);
    let devices = flag_opt::<usize>(&flags, "devices", "an integer")?;
    // Failure injection: preset names compose with `+` (churn, incident,
    // lossy-reports, cost-skew) and key=value terms override fields. The
    // default "none" is inert — the healthy path stays byte-identical.
    let mut scenario = flag_opt::<String>(&flags, "scenario", "a scenario spec")?
        .map_or(Ok(ScenarioSpec::none()), |s| ScenarioSpec::parse(&s))?;
    scenario.seed = flag_u64(&flags, "scenario-seed", scenario.seed)?;
    // Watchdog recovery slice, as a fraction of the fleet's capacity rate.
    // 0 disables the watchdog entirely (bit-identical to the plain engine).
    let recovery_budget_frac = flag_f64(&flags, "recovery-budget-frac", 0.0)?;
    if !(0.0..=1.0).contains(&recovery_budget_frac) {
        return Err("--recovery-budget-frac wants a fraction in [0, 1]".into());
    }
    let budget = flag_opt::<f64>(&flags, "budget", "a non-negative number")?;
    if budget.is_some_and(|b| b.is_nan() || b < 0.0) {
        return Err("--budget wants a non-negative number".into());
    }
    let policy = flag_opt::<String>(&flags, "policy", "a policy name")?
        .map(|v| {
            SchedulerPolicy::parse(&v).ok_or_else(|| {
                format!(
                    "unknown policy {v:?}; valid: {}",
                    SchedulerPolicy::ALL.map(|p| p.name()).join("|")
                )
            })
        })
        .transpose()?;

    if paper_scale && devices.is_some() {
        return Err("--paper-scale and --devices conflict: the paper-scale fleet \
                    is exactly 1613 pairs (115/metric + 3 extras)"
            .into());
    }
    if devices == Some(0) {
        return Err("--devices wants a positive fleet size".into());
    }
    let metrics_out = flag_opt::<String>(&flags, "metrics-out", "a file path")?;
    let metrics_every = flag_u64(&flags, "metrics-every", 1)? as usize;
    if metrics_every == 0 {
        return Err("--metrics-every wants a positive epoch count (1 = every epoch)".into());
    }
    if metrics_out.is_none() && flags.iter().any(|(n, _)| n == "metrics-every") {
        return Err("--metrics-every only makes sense with --metrics-out".into());
    }
    let mut recorder = metrics_out
        .as_deref()
        .map(|path| {
            let mut rec = fleetsim::metrics::MetricsRecorder::to_path(std::path::Path::new(path))
                .map_err(|e| format!("cannot open --metrics-out {path:?}: {e}"))?;
            rec.set_every(metrics_every);
            Ok::<_, String>(rec)
        })
        .transpose()?;
    let cfg = FleetSimConfig {
        fleet: FleetConfig {
            seed,
            devices_per_metric: 115,
            trace_duration: Seconds::from_days(1.0),
        },
        // The paper-scale 1613-pair fleet is the default; --devices N
        // switches to an N-pair round-robin fleet (beyond 1613 included).
        paper_scale: devices.is_none(),
        devices,
        days,
        threads,
        verify_every,
        fft_table_budget,
        scenario,
        recovery_budget_frac,
        ..FleetSimConfig::default()
    };
    let rec = recorder.as_mut();
    let frontier = match (budget, policy) {
        (Some(b), p) => fleetsim::run_point_recorded(&cfg, b, p, rec),
        (None, Some(p)) => fleetsim::run_frontier_for_recorded(&cfg, &[p], rec),
        (None, None) => {
            fleetsim::run_frontier_for_recorded(&cfg, &fleetsim::CAPPED_POLICIES, rec)
        }
    };
    if let Some(mut rec) = recorder {
        rec.finish().map_err(|e| {
            format!(
                "writing --metrics-out {:?} failed: {e}",
                metrics_out.as_deref().unwrap_or("")
            )
        })?;
    }
    if json {
        println!("{}", frontier.to_json_with(json_devices));
    } else {
        print!("{}", frontier.render());
    }
    if timing {
        // stderr, not stdout: timing varies run to run, and stdout must stay
        // byte-identical across thread counts (CI compares it verbatim).
        eprint!(
            "{}",
            fleetsim::metrics::timing_report(
                &frontier,
                sweetspot::analysis::report::peak_rss_kb()
            )
        );
    }
    Ok(())
}

fn cmd_demo(args: &[String]) -> Result<(), String> {
    let flags = flags(args, 0)?;
    reject_unknown_flags(&flags, &["metric", "days", "seed"], "demo")?;
    let days = flag_f64(&flags, "days", 2.0)?;
    let seed = flag_u64(&flags, "seed", 7)?;
    let metric_name = flags
        .iter()
        .find(|(n, _)| n == "metric")
        .map(|(_, v)| v.clone())
        .unwrap_or_else(|| "Temperature".into());
    let kind = MetricKind::ALL
        .iter()
        .find(|k| k.name().eq_ignore_ascii_case(&metric_name))
        .ok_or_else(|| {
            format!(
                "unknown metric {metric_name:?}; valid: {}",
                MetricKind::ALL.map(|k| k.name()).join(", ")
            )
        })?;
    let device = DeviceTrace::synthesize(MetricProfile::for_kind(*kind), 0, seed);
    let trace = device.production_trace(Seconds::from_days(days));
    print!("{}", ingest::to_csv(&trace));
    Ok(())
}
