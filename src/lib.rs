//! # sweetspot
//!
//! A Rust reproduction of **"Towards a Cost vs. Quality Sweet Spot for
//! Monitoring Networks"** (Yaseen et al., HotNets 2021): treat datacenter
//! telemetry as sampled signals, estimate each signal's Nyquist rate with an
//! FFT energy threshold, detect aliasing with dual-rate sampling, adapt the
//! polling rate dynamically — and collect orders of magnitude fewer samples
//! at (nearly) the same quality.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`dsp`] | FFT, PSD, windows, filters, resampling, quantization, stats |
//! | [`timeseries`] | regular/irregular series, time/rate newtypes, cleaning |
//! | [`telemetry`] | synthetic datacenter fleet (the data substrate) |
//! | [`core`] | Nyquist estimator, aliasing detector, adaptive sampler, reconstruction |
//! | [`monitor`] | monitoring-system simulator with cost & quality models |
//! | [`analysis`] | fleet-study harness and per-figure experiment drivers |
//!
//! ## Quickstart
//!
//! ```
//! use sweetspot::prelude::*;
//!
//! // A band-limited telemetry signal, sampled the way operators do today.
//! let profile = MetricProfile::for_kind(MetricKind::Temperature);
//! let device = DeviceTrace::synthesize(profile, 0, 42);
//! let trace = device.ground_truth(profile.production_rate(), Seconds::from_days(2.0));
//!
//! // What rate does this signal actually need?
//! let mut estimator = NyquistEstimator::paper_defaults();
//! match estimator.estimate_series(&trace) {
//!     NyquistEstimate::Rate(rate) => {
//!         let today = profile.production_rate();
//!         println!("sampling at {today}, Nyquist rate is {rate}: {:.0}x reduction possible",
//!                  today / rate);
//!     }
//!     NyquistEstimate::Aliased => println!("already aliased — sample faster, not slower"),
//! }
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub use sweetspot_analysis as analysis;
pub use sweetspot_arena as arena;
pub use sweetspot_core as core;
pub use sweetspot_dsp as dsp;
pub use sweetspot_monitor as monitor;
pub use sweetspot_obs as obs;
pub use sweetspot_telemetry as telemetry;
pub use sweetspot_timeseries as timeseries;

/// The most common imports in one place.
pub mod prelude {
    pub use sweetspot_core::adaptive::{AdaptiveConfig, AdaptiveSampler, EpochReport};
    pub use sweetspot_core::aliasing::{detect_aliasing, AliasingVerdict, DualRateConfig};
    pub use sweetspot_core::estimator::{NyquistConfig, NyquistEstimate, NyquistEstimator};
    pub use sweetspot_core::reconstruct::{roundtrip, ReconstructionConfig};
    pub use sweetspot_core::source::{FunctionSource, SignalSource};
    pub use sweetspot_core::tracker::{track, TrackerConfig};
    pub use sweetspot_monitor::system::{MonitoringSystem, Policy};
    pub use sweetspot_telemetry::{DeviceTrace, Fleet, FleetConfig, MetricKind, MetricProfile};
    pub use sweetspot_timeseries::{Hertz, IrregularSeries, RegularSeries, Seconds};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_is_usable() {
        use crate::prelude::*;
        let p = MetricProfile::for_kind(MetricKind::Temperature);
        assert!(p.production_rate().value() > 0.0);
    }
}
